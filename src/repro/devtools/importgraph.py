"""Static *eager* import graph, resolved through PEP 562 lazy-export seams.

``import repro`` must never load numpy/numba/cupy — the repo's
lazy-import invariant, enforced dynamically by the test-suite since PR 4.
This module proves it statically, which requires modelling exactly what
executes at import time:

* **eager statements** — imports at module level, inside class bodies,
  inside ``try``/``with``/``if`` blocks (all of which run at import) —
  count; imports inside function bodies (including the PEP 562
  ``__getattr__`` hooks themselves) do not;
* ``if TYPE_CHECKING:`` bodies never execute and are skipped;
* ``from pkg import name`` where ``pkg`` is a *lazy-export package*
  (a scanned ``__init__`` with a module-level ``__getattr__`` and a
  literal name→submodule map such as ``repro.engine``'s ``_EXPORTS``)
  triggers ``__getattr__`` **eagerly** for names the package does not
  bind at top level — so the edge resolves through the seam to the
  submodule that really loads (``from repro.engine import KERNEL_CHOICES``
  is an eager import of ``repro.engine.dispatch``).

The graph is over dotted module names; edges into modules outside the
scan set (stdlib, third-party) terminate there — which is exactly where
the forbidden-root check (``numpy``/``numba``/``cupy``) applies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .project import LintModule, Project


@dataclass(frozen=True)
class ImportEdge:
    """One eager import: ``importer`` loads ``target`` at import time."""

    importer: str
    target: str
    line: int


def _is_type_checking_test(test: ast.expr) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def iter_eager_statements(body: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement that executes when the module is imported.

    Descends into compound statements whose bodies run at import time
    (``if``/``try``/``with``/``for``/``while`` and class bodies) and
    stops at function boundaries; ``if TYPE_CHECKING:`` bodies are dead
    at runtime and skipped (their ``else`` branch still runs).
    """
    for node in body:
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.If):
            if not _is_type_checking_test(node.test):
                yield from iter_eager_statements(node.body)
            yield from iter_eager_statements(node.orelse)
        elif isinstance(node, ast.Try):
            for block in (node.body, node.orelse, node.finalbody):
                yield from iter_eager_statements(block)
            for handler in node.handlers:
                yield from iter_eager_statements(handler.body)
        elif isinstance(node, (ast.With, ast.AsyncWith, ast.For,
                               ast.AsyncFor, ast.While, ast.ClassDef)):
            yield from iter_eager_statements(node.body)
            orelse = getattr(node, "orelse", None)
            if orelse:
                yield from iter_eager_statements(orelse)


def _module_level_names(module: LintModule) -> Set[str]:
    """Names the module binds eagerly at top level (incl. imports)."""
    names: Set[str] = set()
    for node in iter_eager_statements(module.tree.body):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                names.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
    return names


def lazy_export_map(module: LintModule) -> Dict[str, str]:
    """The PEP 562 name→submodule map of a lazy-export package.

    Recognises the repo idiom: a module-level ``__getattr__`` plus one or
    more literal ``{"Name": ".submodule"}`` dict assignments (values are
    submodule paths relative to the package).  Returns absolute target
    module names; empty when the module has no such seam.  Lazy-export
    *lists* (names resolved through another package's map, like the
    top-level ``_LAZY_ENGINE_EXPORTS``) contribute nothing here — their
    resolution happens on attribute access, which is lazy by definition
    unless a ``from`` import triggers it (handled by the edge resolver).
    """
    has_getattr = any(
        isinstance(node, ast.FunctionDef) and node.name == "__getattr__"
        for node in module.tree.body)
    if not has_getattr:
        return {}
    mapping: Dict[str, str] = {}
    package = module.name if module.is_package \
        else module.name.rsplit(".", 1)[0]
    for node in module.tree.body:
        if not isinstance(node, ast.Assign) \
                or not isinstance(node.value, ast.Dict):
            continue
        literal: Dict[str, str] = {}
        for key, value in zip(node.value.keys, node.value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                literal = {}
                break
            literal[key.value] = value.value
        for name, target in literal.items():
            if target.startswith("."):
                mapping[name] = package + target
            else:
                mapping[name] = target
    return mapping


def resolve_relative(module: LintModule, level: int,
                     target: Optional[str]) -> Optional[str]:
    """Absolute module name of a (possibly relative) ``from`` import."""
    if level == 0:
        return target
    parts = list(module.segments)
    if not module.is_package:
        parts = parts[:-1]
    parts = parts[:len(parts) - (level - 1)] if level > 1 else parts
    if not parts:
        return None  # relative import escaping the scanned tree
    base = ".".join(parts)
    return f"{base}.{target}" if target else base


def _ancestors(target: str) -> Iterator[str]:
    """``a.b.c`` → ``a``, ``a.b``, ``a.b.c`` (importing loads them all)."""
    parts = target.split(".")
    for index in range(1, len(parts) + 1):
        yield ".".join(parts[:index])


def eager_import_edges(module: LintModule,
                       project: Project) -> List[ImportEdge]:
    """Every module this one loads at import time (deduplicated)."""
    edges: List[ImportEdge] = []
    seen: Set[str] = set()

    def add(target: str, line: int) -> None:
        for name in _ancestors(target):
            if name not in seen:
                seen.add(name)
                edges.append(ImportEdge(module.name, name, line))

    for node in iter_eager_statements(module.tree.body):
        if isinstance(node, ast.Import):
            for alias in node.names:
                add(alias.name, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            base = resolve_relative(module, node.level, node.module)
            if base is None:
                continue
            add(base, node.lineno)
            base_module = project.by_name.get(base)
            lazy_map = lazy_export_map(base_module) if base_module else {}
            eager_names = _module_level_names(base_module) \
                if base_module else set()
            for alias in node.names:
                if alias.name == "*":
                    continue
                submodule = f"{base}.{alias.name}"
                if submodule in project.by_name:
                    # ``from pkg import submodule`` loads the submodule.
                    add(submodule, node.lineno)
                elif base_module is not None \
                        and alias.name not in eager_names \
                        and alias.name in lazy_map:
                    # PEP 562 seam: the name is not bound at top level, so
                    # this ``from`` import triggers ``__getattr__`` — and
                    # with it the mapped submodule — eagerly.
                    add(lazy_map[alias.name], node.lineno)
    return edges


class ImportGraph:
    """The eager import graph over a whole project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._edges: Dict[str, List[ImportEdge]] = {
            module.name: eager_import_edges(module, project)
            for module in project.modules
        }

    def edges_from(self, name: str) -> List[ImportEdge]:
        """Eager edges out of module ``name`` (empty for external modules)."""
        return self._edges.get(name, [])

    def reachable_from(self, root: str
                       ) -> Dict[str, Tuple[Optional[str], ImportEdge]]:
        """BFS closure of the eager graph from ``root``.

        Returns ``{module: (parent_module, edge)}`` for every module
        reached (excluding the root itself) — enough to reconstruct the
        import chain that loads any of them.
        """
        parents: Dict[str, Tuple[Optional[str], ImportEdge]] = {}
        queue: List[str] = [root]
        visited: Set[str] = {root}
        while queue:
            current = queue.pop(0)
            for edge in self.edges_from(current):
                if edge.target in visited:
                    continue
                visited.add(edge.target)
                parents[edge.target] = (current, edge)
                queue.append(edge.target)
        return parents

    def chain_to(self, parents: Dict[str, Tuple[Optional[str], ImportEdge]],
                 target: str, root: str) -> List[str]:
        """The module chain ``root → ... → target`` for a BFS result."""
        chain = [target]
        current = target
        while current != root and current in parents:
            current = parents[current][0] or root
            chain.append(current)
        return list(reversed(chain))
