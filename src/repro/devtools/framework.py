"""The pluggable checker framework: ``Checker`` protocol + ``LintRunner``.

A checker is a named rule over a whole :class:`~repro.devtools.project.Project`
— most walk each module's AST independently, the import-graph rule reasons
over the package as a whole; both fit the same ``check(project)`` seam.
The runner is deliberately thin: load once, run every (selected) checker,
return sorted findings.  New invariants land as new checkers registered in
:func:`repro.devtools.checkers.all_checkers`; nothing else changes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, Sequence, runtime_checkable

from .findings import Finding
from .project import LintUsageError, Project


@runtime_checkable
class Checker(Protocol):
    """One rule: a stable id, a human title, and a project-wide pass."""

    #: Stable rule identifier carried by findings and baselines (``RPR00x``).
    rule_id: str
    #: One-line description shown by ``--rules`` and in reports.
    title: str

    def check(self, project: Project) -> Iterable[Finding]:
        """Yield every violation of this rule in ``project``."""
        ...


class LintRunner:
    """Runs a set of checkers over a project and collects their findings."""

    def __init__(self, checkers: Sequence[Checker]) -> None:
        self.checkers: List[Checker] = list(checkers)

    def select(self, rule_ids: Optional[Sequence[str]]) -> "LintRunner":
        """A runner restricted to ``rule_ids`` (unknown ids are an error)."""
        if rule_ids is None:
            return self
        known = {checker.rule_id: checker for checker in self.checkers}
        missing = [rule for rule in rule_ids if rule not in known]
        if missing:
            raise LintUsageError(
                f"unknown rule id(s): {', '.join(sorted(missing))}; "
                f"known: {', '.join(sorted(known))}")
        return LintRunner([known[rule] for rule in rule_ids])

    def rule_ids(self) -> List[str]:
        """The ids of every checker this runner will apply, sorted."""
        return sorted(checker.rule_id for checker in self.checkers)

    def run(self, project: Project) -> List[Finding]:
        """Apply every checker; findings come back sorted and deduplicated."""
        findings: List[Finding] = []
        for checker in self.checkers:
            findings.extend(checker.check(project))
        return sorted(set(findings))
