"""BIST address generator.

On-chip BIST address generators do not materialise arbitrary permutations;
they step a counter in one of a few hardware-friendly orders.  The generator
here supports the two orders the repository's experiments need — the
word-line-after-word-line order required by the low-power test mode, and the
fast-row (column-major) order typical of legacy BIST — and exposes them as
:class:`repro.march.ordering.AddressOrder` objects so the rest of the stack
(execution walker, fault simulator, sessions) can consume them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Tuple

from ..march.ordering import AddressOrder, ColumnMajorOrder, RowMajorOrder
from ..sram.geometry import ArrayGeometry


class BistOrder(Enum):
    """Counting orders a hardware address generator can implement cheaply."""

    #: word-line after word-line (row-major): required by the low-power test mode.
    WORDLINE_SEQUENTIAL = "wordline"
    #: fast-row (column-major): the traditional functional-BIST order.
    FAST_ROW = "fast-row"


@dataclass
class AddressGenerator:
    """Counter-based address generator of a BIST engine."""

    geometry: ArrayGeometry
    order: BistOrder = BistOrder.WORDLINE_SEQUENTIAL

    def as_address_order(self) -> AddressOrder:
        """The equivalent software :class:`AddressOrder`.

        Memoised per configured :class:`BistOrder`: AddressOrder caches
        its derived structures (coordinate arrays, rank array, the
        wordline-sequential verdict) *per instance*, so handing out a
        fresh order on every call would rebuild them on every call —
        at 4096 x 4096 that one allocation dominated the whole warm PRR
        measurement.  Reconfiguring :attr:`order` naturally misses the
        memo and builds the other order once.
        """
        memo = getattr(self, "_order_memo", None)
        if memo is not None and memo[0] is self.order \
                and memo[1] is self.geometry:
            return memo[2]
        if self.order is BistOrder.WORDLINE_SEQUENTIAL:
            built: AddressOrder = RowMajorOrder(self.geometry)
        else:
            built = ColumnMajorOrder(self.geometry)
        self._order_memo = (self.order, self.geometry, built)
        return built

    # ------------------------------------------------------------------
    # Hardware-style stepping (used by the controller FSM and its tests)
    # ------------------------------------------------------------------
    def first(self, ascending: bool = True) -> int:
        return 0 if ascending else self.geometry.word_count - 1

    def next(self, position: int, ascending: bool = True) -> int | None:
        """Counter step; returns ``None`` past the last address."""
        if ascending:
            nxt = position + 1
            return nxt if nxt < self.geometry.word_count else None
        nxt = position - 1
        return nxt if nxt >= 0 else None

    def coordinate(self, position: int) -> Tuple[int, int]:
        """(row, word) for a counter value, respecting the configured order."""
        return self.as_address_order().coordinate_at(position)

    def sweep(self, ascending: bool = True) -> Iterator[Tuple[int, int]]:
        order = self.as_address_order()
        return order.ascending() if ascending else order.descending()

    def supports_low_power_mode(self) -> bool:
        """Only the word-line-sequential order satisfies the paper's requirement."""
        return self.as_address_order().is_wordline_sequential()
