"""BIST response comparator.

Compares every read response against the March expectation and keeps a
bounded log of failing accesses (address, expected, observed), which is what
an on-chip comparator would ship to the tester through the BIST result
register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class ComparatorLog:
    """One failing read captured by the comparator."""

    cycle: int
    row: int
    word: int
    expected: int
    observed: int


@dataclass
class Comparator:
    """Pass/fail accumulator with a bounded failure log."""

    log_limit: int = 64
    failures: int = 0
    log: List[ComparatorLog] = field(default_factory=list)

    def check(self, cycle: int, row: int, word: int,
              expected: int, observed: int) -> bool:
        """Record one read comparison; returns True when it matches."""
        if observed == expected:
            return True
        self.failures += 1
        if len(self.log) < self.log_limit:
            self.log.append(ComparatorLog(cycle=cycle, row=row, word=word,
                                          expected=expected, observed=observed))
        return False

    @property
    def passed(self) -> bool:
        return self.failures == 0

    def first_failure(self) -> Optional[ComparatorLog]:
        return self.log[0] if self.log else None

    def reset(self) -> None:
        self.failures = 0
        self.log.clear()
