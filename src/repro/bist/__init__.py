"""Memory BIST substrate.

A small built-in self-test engine that drives the March algorithms against
the behavioural SRAM exactly the way an on-chip BIST controller would: an
address generator restricted to hardware-friendly orders, a response
comparator, and a controller FSM that owns the ``LPtest`` mode signal and
the per-cycle pre-charge planning.  The BIST layer is how a user of this
library would actually deploy the paper's low-power test mode.

Power measurement is backend-pluggable (:mod:`repro.bist.backend`): the
controller runs either on the cycle-accurate behavioural memory
(``backend="reference"``) or on the vectorized power-campaign engine of
:mod:`repro.engine.power_campaign` (``backend="vectorized"``/``"auto"``),
which makes the paper-scale measured Table 1 interactive.
"""

from .address_generator import AddressGenerator, BistOrder
from .backend import POWER_BACKENDS, PowerBackend, ReferencePowerBackend
from .comparator import Comparator, ComparatorLog
from .controller import BistController, BistResult, BistError

__all__ = [
    "AddressGenerator", "BistOrder",
    "Comparator", "ComparatorLog",
    "BistController", "BistResult", "BistError",
    "POWER_BACKENDS", "PowerBackend", "ReferencePowerBackend",
]
