"""Pluggable BIST power-measurement backends.

A BIST power campaign is a batch workload: the same March run measured in
functional and low-power test mode, across a library of algorithms and at
paper-scale geometries.  This module defines the backend seam the
:class:`~repro.bist.controller.BistController` plugs into — the same shape
as :class:`repro.faults.backend.FaultBackend` and the ``backend`` switch of
:class:`repro.core.session.TestSession`:

* :class:`ReferencePowerBackend` — the cycle-accurate scalar path: one
  behavioural :class:`~repro.sram.memory.SRAM` per run, walked access by
  access with the real pre-charge planners and the response comparator.
  Supports every configuration, including injected-fault memories.
* ``"vectorized"`` — :class:`repro.engine.power_campaign.VectorizedPowerCampaign`,
  which replays a compiled :class:`~repro.march.execution.OperationTrace`
  and computes the pre-charge activity, the comparator outcomes and all
  five Section 5 power sources in closed vector form.  It lives in
  :mod:`repro.engine` so the BIST layer stays importable without numpy.

Both backends must produce equivalent :class:`~repro.bist.controller.BistResult`
measurements — energy totals per source, pass/fail verdicts and the bounded
comparator log; ``tests/test_prr_differential.py`` asserts this across the
whole algorithm library.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from ..circuit.technology import TechnologyParameters, default_technology
from ..core.lowpower import FunctionalModePlanner, LowPowerTestPlanner
from ..engine.dispatch import register_backend_family
from ..march.algorithm import MarchAlgorithm
from ..march.execution import walk
from ..march.ordering import AddressOrder
from ..sram.array import BackgroundFunction, solid_background
from ..sram.geometry import ArrayGeometry
from ..sram.memory import OperatingMode, SRAM
from .comparator import Comparator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .controller import BistResult


#: Valid values of the ``backend`` switch of :class:`repro.bist.BistController`
#: (the "bist" family of :mod:`repro.engine.dispatch`).
POWER_BACKENDS = register_backend_family("bist")


def planner_name(low_power: bool) -> str:
    """The planner class name that produces a mode's power figures.

    Shared by both power backends so :attr:`BistResult.planner` reports the
    same attribution regardless of the engine that measured the run.
    """
    return (LowPowerTestPlanner.__name__ if low_power
            else FunctionalModePlanner.__name__)


class PowerBackend(Protocol):
    """Protocol every BIST power-measurement backend implements.

    A backend runs one March ``algorithm`` over one ``order`` in one mode
    (``low_power``) against a fault-free memory initialised with
    ``background``, and returns the full
    :class:`~repro.bist.controller.BistResult` — pass/fail plus the
    comparator log, cycle count and the per-source energy ledger — with
    its :attr:`~repro.bist.controller.BistResult.backend` and
    :attr:`~repro.bist.controller.BistResult.planner` fields filled in.
    """

    #: registry name of the backend ("reference" / "vectorized").
    name: str

    def measure(self, algorithm: MarchAlgorithm, order: AddressOrder,
                low_power: bool,
                background: Optional[BackgroundFunction] = None,
                log_limit: int = 64) -> "BistResult":
        """Measure one run; see the class docstring."""
        ...  # pragma: no cover - protocol stub


class ReferencePowerBackend:
    """Scalar cycle-by-cycle walk over the behavioural memory.

    The behavioural ground truth: a fresh :class:`~repro.sram.memory.SRAM`
    (or a caller-supplied one, e.g. with injected faults), the real
    :class:`~repro.core.lowpower.LowPowerTestPlanner` /
    :class:`~repro.core.lowpower.FunctionalModePlanner`, and the response
    comparator checking every read — exactly what the pre-backend
    :class:`~repro.bist.controller.BistController` executed inline.
    """

    name = "reference"

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None) -> None:
        self.geometry = geometry
        self.tech = tech or default_technology()

    # ------------------------------------------------------------------
    def build_memory(self, low_power: bool,
                     background: Optional[BackgroundFunction] = None) -> SRAM:
        """A fresh fault-free memory in the requested mode, background applied."""
        mode = OperatingMode.LOW_POWER_TEST if low_power else OperatingMode.FUNCTIONAL
        memory = SRAM(self.geometry, tech=self.tech, mode=mode,
                      ledger_label=f"BIST [{mode.value}]")
        memory.apply_background(background if background is not None
                                else solid_background(0))
        return memory

    def measure(self, algorithm: MarchAlgorithm, order: AddressOrder,
                low_power: bool,
                background: Optional[BackgroundFunction] = None,
                log_limit: int = 64,
                memory: Optional[SRAM] = None,
                comparator: Optional[Comparator] = None) -> "BistResult":
        """Walk ``algorithm`` on the behavioural memory and measure everything.

        ``memory`` optionally supplies a pre-built (e.g. fault-injected)
        memory instead of a fresh fault-free one; ``comparator`` optionally
        reuses a caller-owned comparator (it is reset first).  Neither extra
        parameter is part of the :class:`PowerBackend` protocol — only the
        reference backend can honour them.
        """
        from .controller import BistResult  # deferred: controller imports this module

        if memory is None:
            memory = self.build_memory(low_power, background)
        else:
            memory.set_mode(OperatingMode.LOW_POWER_TEST if low_power
                            else OperatingMode.FUNCTIONAL)
        planner = (LowPowerTestPlanner(self.geometry, tech=self.tech)
                   if low_power else FunctionalModePlanner())
        planner.reset()
        if comparator is None:
            comparator = Comparator(log_limit=log_limit)
        comparator.reset()

        for step in walk(algorithm, order):
            plan = planner.plan(step) if low_power else None
            if step.is_write:
                memory.write(step.row, step.word, step.operation.value, plan=plan)
                continue
            outcome = memory.read(step.row, step.word, plan=plan)
            comparator.check(cycle=outcome.cycle, row=step.row, word=step.word,
                             expected=step.operation.value, observed=outcome.value)

        ledger = memory.ledger
        return BistResult(
            algorithm=algorithm.name,
            low_power_mode=low_power,
            passed=comparator.passed,
            failures=comparator.failures,
            cycles=memory.cycle,
            total_energy=ledger.total_energy(),
            average_power=ledger.average_power(),
            energy_by_source=ledger.energy_by_source(),
            failure_log=list(comparator.log),
            planner=planner_name(low_power),
            backend=self.name,
        )
