"""BIST controller: owns the LPtest signal and sequences March tests.

The controller ties together the address generator, the response comparator
and the pre-charge planning.  It refuses to engage the low-power test mode
when the configured address order is not word-line-sequential (the paper's
precondition), falls back to functional mode for algorithms that need it
(Section 4 notes that tests relying on functional-mode power behaviour must
run with LPtest off), and reports pass/fail plus the power measurements of
the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuit.technology import TechnologyParameters, default_technology
from ..core.lowpower import FunctionalModePlanner, LowPowerTestPlanner
from ..march.algorithm import MarchAlgorithm
from ..march.execution import walk
from ..power.sources import PowerSource
from ..sram.array import BackgroundFunction, solid_background
from ..sram.geometry import ArrayGeometry
from ..sram.memory import OperatingMode, SRAM
from .address_generator import AddressGenerator, BistOrder
from .comparator import Comparator


class BistError(Exception):
    """Raised on unsupported BIST configurations."""


@dataclass
class BistResult:
    """Outcome of one BIST run."""

    algorithm: str
    low_power_mode: bool
    passed: bool
    failures: int
    cycles: int
    total_energy: float
    average_power: float
    energy_by_source: Dict[PowerSource, float] = field(default_factory=dict)
    failure_log: List = field(default_factory=list)

    def describe(self) -> str:
        mode = "low-power test mode" if self.low_power_mode else "functional mode"
        verdict = "PASS" if self.passed else f"FAIL ({self.failures} mismatches)"
        return (f"{self.algorithm} in {mode}: {verdict}, "
                f"{self.cycles} cycles, {self.average_power * 1e3:.3f} mW average")


class BistController:
    """Sequencer for March tests on one memory instance."""

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None,
                 order: BistOrder = BistOrder.WORDLINE_SEQUENTIAL,
                 background: Optional[BackgroundFunction] = None) -> None:
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.address_generator = AddressGenerator(geometry, order)
        self.background = background if background is not None else solid_background(0)
        self.comparator = Comparator()

    # ------------------------------------------------------------------
    def build_memory(self, low_power: bool) -> SRAM:
        mode = OperatingMode.LOW_POWER_TEST if low_power else OperatingMode.FUNCTIONAL
        memory = SRAM(self.geometry, tech=self.tech, mode=mode,
                      ledger_label=f"BIST [{mode.value}]")
        memory.apply_background(self.background)
        return memory

    def run(self, algorithm: MarchAlgorithm, low_power: bool = True,
            memory: Optional[SRAM] = None) -> BistResult:
        """Run ``algorithm`` once and return the pass/fail + power result."""
        if low_power and not self.address_generator.supports_low_power_mode():
            raise BistError(
                "the low-power test mode requires the word-line-sequential "
                f"address order; the generator is configured for {self.address_generator.order}")
        algorithm.validate()
        if memory is None:
            memory = self.build_memory(low_power)
        else:
            memory.set_mode(OperatingMode.LOW_POWER_TEST if low_power
                            else OperatingMode.FUNCTIONAL)
        planner = (LowPowerTestPlanner(self.geometry, tech=self.tech)
                   if low_power else FunctionalModePlanner())
        planner.reset()
        self.comparator.reset()
        order = self.address_generator.as_address_order()

        for step in walk(algorithm, order):
            plan = planner.plan(step) if low_power else None
            if step.is_write:
                memory.write(step.row, step.word, step.operation.value, plan=plan)
                continue
            outcome = memory.read(step.row, step.word, plan=plan)
            self.comparator.check(cycle=outcome.cycle, row=step.row, word=step.word,
                                  expected=step.operation.value, observed=outcome.value)

        ledger = memory.ledger
        return BistResult(
            algorithm=algorithm.name,
            low_power_mode=low_power,
            passed=self.comparator.passed,
            failures=self.comparator.failures,
            cycles=memory.cycle,
            total_energy=ledger.total_energy(),
            average_power=ledger.average_power(),
            energy_by_source=ledger.energy_by_source(),
            failure_log=list(self.comparator.log),
        )

    def run_suite(self, algorithms, low_power: bool = True) -> List[BistResult]:
        """Run several algorithms back to back (fresh memory each time)."""
        return [self.run(algorithm, low_power=low_power) for algorithm in algorithms]
