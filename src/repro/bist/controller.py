"""BIST controller: owns the LPtest signal and sequences March tests.

The controller ties together the address generator, the response comparator
and the pre-charge planning.  It refuses to engage the low-power test mode
when the configured address order is not word-line-sequential (the paper's
precondition), falls back to functional mode for algorithms that need it
(Section 4 notes that tests relying on functional-mode power behaviour must
run with LPtest off), and reports pass/fail plus the power measurements of
the run.

Execution is pluggable (the same seam as
:class:`repro.core.session.TestSession` and
:class:`repro.faults.FaultSimulator`): ``backend="reference"`` walks the
behavioural memory cycle by cycle through
:class:`~repro.bist.backend.ReferencePowerBackend`, ``backend="vectorized"``
replays the compiled operation trace on
:class:`repro.engine.power_campaign.VectorizedPowerCampaign` (required for
paper-scale power campaigns), and ``backend="auto"`` picks the vectorized
engine whenever the run qualifies.  :attr:`BistController.last_backend_used`
reports which engine actually measured the most recent run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuit.technology import TechnologyParameters, default_technology
from ..engine.dispatch import KERNEL_CHOICES, BackendDispatcher, EngineError
from ..march.algorithm import MarchAlgorithm
from ..march.execution import TraceCache
from ..power.sources import PowerSource
from ..sram.array import BackgroundFunction, solid_background
from ..sram.geometry import ArrayGeometry
from ..sram.memory import OperatingMode, SRAM
from .address_generator import AddressGenerator, BistOrder
from .backend import ReferencePowerBackend
from .comparator import Comparator


class BistError(Exception):
    """Raised on unsupported BIST configurations."""


@dataclass
class BistResult:
    """Outcome of one BIST run."""

    algorithm: str
    low_power_mode: bool
    passed: bool
    failures: int
    cycles: int
    total_energy: float
    average_power: float
    energy_by_source: Dict[PowerSource, float] = field(default_factory=dict)
    failure_log: List = field(default_factory=list)
    #: class name of the pre-charge planner that produced the power figures
    #: (``LowPowerTestPlanner`` or ``FunctionalModePlanner``).
    planner: str = ""
    #: execution engine that measured the run ("reference"/"vectorized").
    backend: str = "reference"
    #: concrete kernel tier of the vectorized campaign ("flat" /
    #: "segmented" / "jit" / "gpu"); "" on the reference engine.
    kernel: str = ""

    def describe(self) -> str:
        """One-line human-readable summary of the run."""
        mode = "low-power test mode" if self.low_power_mode else "functional mode"
        verdict = "PASS" if self.passed else f"FAIL ({self.failures} mismatches)"
        planner = f", {self.planner}" if self.planner else ""
        return (f"{self.algorithm} in {mode}: {verdict}, "
                f"{self.cycles} cycles, {self.average_power * 1e3:.3f} mW average"
                f"{planner} [{self.backend}]")


class BistController:
    """Sequencer for March tests on one memory instance.

    ``backend`` selects the power-measurement engine
    (:data:`repro.bist.backend.POWER_BACKENDS`):

    * ``"reference"`` (default) — the cycle-accurate behavioural memory,
      one access at a time.  Supports every configuration, including
      caller-supplied memories with injected faults.
    * ``"vectorized"`` — the NumPy power-campaign engine
      (:class:`repro.engine.power_campaign.VectorizedPowerCampaign`), which
      replays the compiled operation trace in closed vector form and makes
      paper-scale geometries (the full 512 x 512 array) interactive.
      Raises for runs it cannot replay exactly (custom memories, address
      orders that do not keep the pre-charged traversal neighbour).
    * ``"auto"`` — vectorized when the run qualifies, silently falling
      back to the reference engine otherwise.

    Both engines produce equivalent :class:`BistResult` measurements —
    energy totals and per-source breakdowns, pass/fail and the bounded
    comparator log; the differential test-suite asserts this on the whole
    algorithm library.
    """

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None,
                 order: BistOrder = BistOrder.WORDLINE_SEQUENTIAL,
                 background: Optional[BackgroundFunction] = None,
                 backend: str = "reference",
                 trace_cache: Optional[TraceCache] = None,
                 kernel: Optional[str] = None) -> None:
        self._dispatch = BackendDispatcher("bist", self._make_engine,
                                           error=BistError)
        self.backend = self._dispatch.validate(backend)
        if kernel is not None and kernel not in KERNEL_CHOICES:
            raise BistError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_CHOICES}")
        #: kernel tier of the vectorized power campaign (``None`` follows
        #: the process default).
        self.kernel = kernel
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.address_generator = AddressGenerator(geometry, order)
        self.background = background if background is not None else solid_background(0)
        self.comparator = Comparator()
        self._reference = ReferencePowerBackend(geometry, tech=self.tech)
        # ``trace_cache`` optionally shares compiled traces across
        # controllers (the sweep orchestrator passes its process-local one).
        self._trace_cache = trace_cache
        # One AddressOrder instance per generator configuration, so the
        # vectorized campaign's trace cache (keyed by order identity) hits
        # across runs and modes while still following a reconfigured
        # address generator.
        self._address_order = None
        self._address_order_key = None

    @property
    def last_backend_used(self) -> Optional[str]:
        """Engine that measured the calling thread's most recent
        :meth:`run` (``None`` before the first run): "reference" or
        "vectorized".  Thread-local so concurrent runs through a shared
        controller never mis-attribute provenance.
        """
        return self._dispatch.last_backend_used

    @last_backend_used.setter
    def last_backend_used(self, backend: Optional[str]) -> None:
        self._dispatch.note_backend_used(backend)

    def _current_order(self):
        """The generator's AddressOrder, cached per generator configuration."""
        key = (id(self.address_generator), self.address_generator.order)
        if self._address_order is None or self._address_order_key != key:
            self._address_order = self.address_generator.as_address_order()
            self._address_order_key = key
        return self._address_order

    def address_order(self):
        """The :class:`~repro.march.ordering.AddressOrder` of the current
        generator configuration (one shared instance per configuration, so
        trace caches keyed by order identity hit across runs)."""
        return self._current_order()

    def measure_batch(self, requests, collect_errors: bool = True):
        """Measure several ``(algorithm, low_power)`` runs in one stacked pass.

        The grid-batched campaign seam: every request replays its compiled
        trace through one trip of the vectorized power campaign's flat
        kernel (:meth:`repro.engine.power_campaign.VectorizedPowerCampaign
        .measure_batch`), sharing this controller's background, comparator
        log limit and trace cache — each returned
        :class:`BistResult` is bit-identical to what ``run(algorithm,
        low_power=..., backend="vectorized")`` measures for that request
        alone.  With ``collect_errors=True`` (the default) a request the
        bulk replay cannot represent yields its
        :class:`~repro.engine.EngineError` in its result slot, so the
        caller can reroute just that run to the reference path.  Unlike
        :meth:`run`, the controller's comparator and
        :attr:`last_backend_used` are left untouched.

        This is a vectorized-campaign API: a ``backend="reference"``
        controller has no bulk kernel to stack and raises
        :class:`BistError` (measure reference runs one at a time through
        :meth:`run`); ``"auto"`` and ``"vectorized"`` behave identically
        here, with per-unit fallback left to the caller via
        ``collect_errors``.
        """
        if self.backend == "reference":
            raise BistError(
                "measure_batch stacks runs on the vectorized power "
                "campaign; this controller is configured for the "
                "reference backend — use run() per algorithm instead")
        order = self._current_order()
        for algorithm, low_power in requests:
            algorithm.validate()
            if low_power and not self.address_generator.supports_low_power_mode():
                raise BistError(
                    "the low-power test mode requires the word-line-"
                    "sequential address order; the generator is configured "
                    f"for {self.address_generator.order}")
        return self._dispatch.engine.measure_batch(
            requests, order, background=self.background,
            log_limit=self.comparator.log_limit,
            collect_errors=collect_errors)

    # ------------------------------------------------------------------
    def build_memory(self, low_power: bool) -> SRAM:
        """A fresh fault-free memory in the requested mode (reference substrate)."""
        return self._reference.build_memory(low_power, self.background)

    def _make_engine(self):
        """Build the vectorized power campaign (imported lazily: numpy)."""
        from ..engine import VectorizedPowerCampaign  # deferred: numpy optional

        return VectorizedPowerCampaign(
            self.geometry, tech=self.tech, trace_cache=self._trace_cache,
            kernel=self.kernel)

    def warm(self, algorithm: MarchAlgorithm) -> None:
        """Pre-compile ``algorithm``'s operation trace (no measurement).

        On the vectorized backend this populates the campaign's trace
        cache — including the compiled segment structure, the dominant
        cold cost at large geometries — and warms the resolved kernel
        tier (loading numba's on-disk cache for ``kernel="jit"``), so the
        first :meth:`run` measures instead of compiling.  The sweep
        orchestrator's worker initializer calls this for every algorithm
        a worker may be handed.  A no-op on the reference backend (which
        walks fresh each run) and when the engine is unavailable.
        """
        algorithm.validate()
        if self.backend == "reference":
            return
        try:
            self._dispatch.engine.warm(algorithm, self._current_order())
        except (EngineError, ImportError):  # warming is best-effort
            pass

    def run(self, algorithm: MarchAlgorithm, low_power: bool = True,
            memory: Optional[SRAM] = None,
            backend: Optional[str] = None) -> BistResult:
        """Run ``algorithm`` once and return the pass/fail + power result.

        A pre-built ``memory`` (e.g. one with injected faults) can be
        supplied; it always runs on the reference engine.  ``backend``
        overrides the controller's execution engine for this run (see the
        class docstring).
        """
        if low_power and not self.address_generator.supports_low_power_mode():
            raise BistError(
                "the low-power test mode requires the word-line-sequential "
                f"address order; the generator is configured for {self.address_generator.order}")
        algorithm.validate()
        chosen = self._dispatch.validate(
            backend if backend is not None else self.backend)
        order = self._current_order()

        def measure_vectorized(campaign) -> BistResult:
            result = campaign.measure(
                algorithm, order, low_power=low_power,
                background=self.background,
                log_limit=self.comparator.log_limit)
            # Keep the controller's public comparator coherent with the
            # most recent run, whichever engine measured it.
            self.comparator.reset()
            self.comparator.failures = result.failures
            self.comparator.log = list(result.failure_log)
            self.last_backend_used = result.backend
            return result

        def measure_reference() -> BistResult:
            result = self._reference.measure(
                algorithm, order, low_power=low_power,
                background=self.background,
                memory=memory, comparator=self.comparator)
            self.last_backend_used = result.backend
            return result

        if memory is not None:
            if chosen == "vectorized":
                raise BistError(
                    "the vectorized backend cannot run with a custom memory; "
                    "use backend='reference' (or 'auto')")
            return measure_reference()
        # "auto" falls back on EngineError (unsupported run, numpy
        # unavailable); a construction failure is never cached, so any
        # campaign already built stays valid — no invalidation.
        return self._dispatch.call(chosen, vectorized=measure_vectorized,
                                   reference=measure_reference)

    def run_suite(self, algorithms, low_power: bool = True,
                  backend: Optional[str] = None) -> List[BistResult]:
        """Run several algorithms back to back (fresh memory each time)."""
        return [self.run(algorithm, low_power=low_power, backend=backend)
                for algorithm in algorithms]
