"""Power modelling: per-event energies, sources, and cycle-accurate accounting.

* :mod:`repro.power.sources` — the Section-5 power source categories;
* :mod:`repro.power.accounting` — the energy ledger every simulation run
  books its supply energy into;
* :mod:`repro.power.model` — the closed-form per-event model (P_r, P_w,
  P_A, P_B) that feeds the analytical PRR equations and cross-checks the
  behavioural measurements.
"""

from .sources import OVERHEAD_SOURCES, PowerSource, SAVINGS_TARGET_SOURCES
from .accounting import (
    AccountingError,
    EnergyEvent,
    EnergyLedger,
    LedgerSummary,
    SourceBreakdown,
)
from .model import OperationEnergies, PowerModel

__all__ = [
    "PowerSource", "SAVINGS_TARGET_SOURCES", "OVERHEAD_SOURCES",
    "AccountingError", "EnergyEvent", "EnergyLedger", "LedgerSummary",
    "SourceBreakdown",
    "OperationEnergies", "PowerModel",
]
