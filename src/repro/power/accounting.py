"""Cycle-accurate energy accounting.

The behavioural SRAM emits one :class:`EnergyEvent` for every quantum of
supply energy it spends, tagged with the clock cycle, the power source
category (Section 5's list) and, when meaningful, the column involved.  The
:class:`EnergyLedger` aggregates those events into the figures the
experiments report: total energy, average power per clock cycle, per-source
breakdowns, and per-cycle series for waveform-style plots.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from .sources import PowerSource


class AccountingError(Exception):
    """Raised on invalid energy bookings (negative energy, bad cycles...)."""


@dataclass(frozen=True)
class EnergyEvent:
    """One quantum of energy drawn from the supply."""

    cycle: int
    source: PowerSource
    energy: float
    column: Optional[int] = None
    row: Optional[int] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise AccountingError(f"cycle must be non-negative, got {self.cycle}")
        if self.energy < 0:
            raise AccountingError(
                f"energy must be non-negative, got {self.energy} for {self.source}"
            )


@dataclass
class SourceBreakdown:
    """Aggregated energy of one source category."""

    source: PowerSource
    energy: float = 0.0
    events: int = 0

    def add(self, event: EnergyEvent) -> None:
        self.energy += event.energy
        self.events += 1


class EnergyLedger:
    """Accumulates :class:`EnergyEvent` records for one simulation run.

    Long runs on large arrays book millions of energy quanta; keeping one
    Python object per quantum would dominate memory and runtime.  The ledger
    therefore always maintains the aggregate views (per source, per cycle)
    and only retains individual :class:`EnergyEvent` objects when
    ``keep_events`` is set.  ``track_per_cycle`` can likewise be disabled for
    very long runs where the per-cycle series is not needed.
    """

    def __init__(self, clock_period: float, label: str = "",
                 keep_events: bool = True, track_per_cycle: bool = True) -> None:
        if clock_period <= 0:
            raise AccountingError("clock_period must be positive")
        self.clock_period = clock_period
        self.label = label
        self.keep_events = keep_events
        self.track_per_cycle = track_per_cycle
        self._events: List[EnergyEvent] = []
        self._by_source: Dict[PowerSource, SourceBreakdown] = {}
        self._by_column: Dict[PowerSource, Dict[int, float]] = {}
        self._per_cycle: Dict[int, float] = defaultdict(float)
        self._max_cycle = -1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, event: EnergyEvent) -> None:
        """Record a fully described event (always kept when ``keep_events``)."""
        self._book(event.cycle, event.source, event.energy, event.column)
        if self.keep_events:
            self._events.append(event)

    def record_energy(self, cycle: int, source: PowerSource, energy: float,
                      column: Optional[int] = None, row: Optional[int] = None,
                      detail: str = "") -> None:
        """Book an energy quantum.

        Zero-energy bookings are dropped silently (they carry no
        information and would bloat the event list on large arrays).
        """
        if energy == 0.0:
            return
        if energy < 0:
            raise AccountingError(
                f"energy must be non-negative, got {energy} for {source}")
        if cycle < 0:
            raise AccountingError(f"cycle must be non-negative, got {cycle}")
        self._book(cycle, source, energy, column)
        if self.keep_events:
            self._events.append(EnergyEvent(cycle=cycle, source=source, energy=energy,
                                            column=column, row=row, detail=detail))

    def _book(self, cycle: int, source: PowerSource, energy: float,
              column: Optional[int]) -> None:
        breakdown = self._by_source.get(source)
        if breakdown is None:
            breakdown = SourceBreakdown(source)
            self._by_source[source] = breakdown
        breakdown.energy += energy
        breakdown.events += 1
        if column is not None:
            per_column = self._by_column.setdefault(source, {})
            per_column[column] = per_column.get(column, 0.0) + energy
        if self.track_per_cycle:
            self._per_cycle[cycle] += energy
        if cycle > self._max_cycle:
            self._max_cycle = cycle

    def extend(self, events: Iterable[EnergyEvent]) -> None:
        for event in events:
            self.record(event)

    @classmethod
    def from_aggregates(cls, clock_period: float,
                        by_source: Mapping[PowerSource, float],
                        cycles: int, label: str = "") -> "EnergyLedger":
        """Build an aggregate-only ledger from precomputed per-source totals.

        The vectorized execution backend (:mod:`repro.engine`) computes
        energy totals as array reductions rather than one event at a time;
        this constructor wraps those totals in a ledger that reports the
        same aggregate views (total energy, per-source breakdown, average
        power over ``cycles`` clock cycles) as an event-by-event ledger.
        Per-event and per-cycle views are unavailable (``keep_events`` and
        ``track_per_cycle`` are off), and each source counts as one booked
        event.  Zero-energy sources are dropped, mirroring
        :meth:`record_energy`.
        """
        if cycles < 0:
            raise AccountingError(f"cycles must be non-negative, got {cycles}")
        ledger = cls(clock_period, label=label,
                     keep_events=False, track_per_cycle=False)
        last_cycle = max(0, cycles - 1)
        for source, energy in by_source.items():
            if energy < 0:
                raise AccountingError(
                    f"energy must be non-negative, got {energy} for {source}")
            if energy == 0.0:
                continue
            ledger._book(last_cycle, source, energy, column=None)
        if cycles > 0:
            ledger._max_cycle = cycles - 1
        return ledger

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[EnergyEvent]:
        """Individual events (empty when ``keep_events`` is disabled)."""
        return list(self._events)

    @property
    def cycle_count(self) -> int:
        """Number of clock cycles covered (highest booked cycle + 1)."""
        return self._max_cycle + 1

    def total_energy(self, sources: Optional[Iterable[PowerSource]] = None) -> float:
        if sources is None:
            return sum(b.energy for b in self._by_source.values())
        wanted = set(sources)
        return sum(b.energy for s, b in self._by_source.items() if s in wanted)

    def energy_by_source(self) -> Dict[PowerSource, float]:
        return {source: breakdown.energy for source, breakdown in self._by_source.items()}

    def events_by_source(self) -> Dict[PowerSource, int]:
        return {source: breakdown.events for source, breakdown in self._by_source.items()}

    def source_fraction(self, source: PowerSource) -> float:
        """Fraction of total energy attributed to ``source`` (0 when empty)."""
        total = self.total_energy()
        if total <= 0.0:
            return 0.0
        return self._by_source.get(source, SourceBreakdown(source)).energy / total

    def average_power(self) -> float:
        """Average power per clock cycle over the covered cycles (watts)."""
        cycles = self.cycle_count
        if cycles <= 0:
            return 0.0
        return self.total_energy() / (cycles * self.clock_period)

    def average_energy_per_cycle(self) -> float:
        cycles = self.cycle_count
        if cycles <= 0:
            return 0.0
        return self.total_energy() / cycles

    def per_cycle_energy(self) -> List[float]:
        """Energy of each clock cycle, index = cycle number."""
        if not self.track_per_cycle:
            raise AccountingError(
                "per-cycle tracking is disabled for this ledger "
                "(constructed with track_per_cycle=False)"
            )
        return [self._per_cycle.get(c, 0.0) for c in range(self.cycle_count)]

    def per_cycle_power(self) -> List[float]:
        return [e / self.clock_period for e in self.per_cycle_energy()]

    def peak_cycle_energy(self) -> float:
        per_cycle = self.per_cycle_energy()
        return max(per_cycle) if per_cycle else 0.0

    def energy_by_column(self, source: Optional[PowerSource] = None) -> Dict[int, float]:
        """Energy per column (bookings without a column are skipped)."""
        out: Dict[int, float] = defaultdict(float)
        if source is not None:
            for column, energy in self._by_column.get(source, {}).items():
                out[column] += energy
            return dict(out)
        for per_column in self._by_column.values():
            for column, energy in per_column.items():
                out[column] += energy
        return dict(out)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> "LedgerSummary":
        return LedgerSummary(
            label=self.label,
            clock_period=self.clock_period,
            cycles=self.cycle_count,
            total_energy=self.total_energy(),
            average_power=self.average_power(),
            by_source={s.value: e for s, e in sorted(
                self.energy_by_source().items(), key=lambda kv: kv[0].value)},
        )

    def merged_with(self, other: "EnergyLedger", label: str = "") -> "EnergyLedger":
        """Concatenate two ledgers (the other's cycles are shifted after ours).

        Both ledgers must have been constructed with ``keep_events=True``;
        merging aggregate-only ledgers would silently lose information.
        """
        if other.clock_period != self.clock_period:
            raise AccountingError("cannot merge ledgers with different clock periods")
        if not (self.keep_events and other.keep_events):
            raise AccountingError("merging requires both ledgers to keep their events")
        merged = EnergyLedger(self.clock_period, label=label or self.label)
        for event in self._events:
            merged.record(event)
        offset = self.cycle_count
        for event in other._events:
            merged.record(EnergyEvent(
                cycle=event.cycle + offset, source=event.source, energy=event.energy,
                column=event.column, row=event.row, detail=event.detail))
        return merged


@dataclass(frozen=True)
class LedgerSummary:
    """Flat summary of a ledger, convenient for tables and experiment logs."""

    label: str
    clock_period: float
    cycles: int
    total_energy: float
    average_power: float
    by_source: Mapping[str, float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "clock_period": self.clock_period,
            "cycles": self.cycles,
            "total_energy": self.total_energy,
            "average_power": self.average_power,
            "by_source": dict(self.by_source),
        }
