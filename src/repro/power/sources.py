"""Enumeration of the power-dissipation sources tracked during test.

Section 5 of the paper identifies five main sources of power dissipation
during test; the cycle-accurate accounting uses a slightly finer-grained
enumeration so that every one of the paper's categories can be reported,
together with the secondary contributions (cell-side RES, leakage, decoders)
that the paper argues are negligible and that we keep visible to back that
claim with numbers.
"""

from __future__ import annotations

from enum import Enum


class PowerSource(Enum):
    """Where a quantum of supply energy was spent."""

    #: Read operation on the selected column(s): decoders, word line, read
    #: differential development, sense amplifier and the restoration of the
    #: selected column's bit lines (paper: P_r).
    OPERATION_READ = "operation_read"
    #: Write operation on the selected column(s) (paper: P_w).
    OPERATION_WRITE = "operation_write"
    #: Pre-charge circuits of unselected columns sustaining read-equivalent
    #: stress and re-restoring their bit lines (paper source 1, P_A per
    #: circuit per cycle).  This is the term the proposed test mode removes.
    PRECHARGE_UNSELECTED = "precharge_unselected"
    #: Cell-side energy of read-equivalent stress (paper source 4; three
    #: orders of magnitude below the pre-charge term).
    CELL_RES = "cell_res"
    #: Full-array bit-line restoration during the one functional-mode cycle
    #: at each row transition in low-power test mode (paper source 2, P_B).
    ROW_TRANSITION_RESTORE = "row_transition_restore"
    #: Driver of the LPtest mode-selection line (paper source 3).
    LPTEST_DRIVER = "lptest_driver"
    #: Switching of the added per-column control elements (paper source 5).
    CONTROL_LOGIC = "control_logic"
    #: Cell array leakage (kept for completeness; negligible at 0.13 µm for
    #: the cycle counts of a March test).
    LEAKAGE = "leakage"
    #: Bank-select line switching when an access crosses from one sub-array
    #: bank to another (beyond-paper: the paper's array is monolithic, so
    #: this source only appears for ``ArrayGeometry(banks > 1)``).
    BANK_SELECT = "bank_select"

    @property
    def is_operation(self) -> bool:
        return self in (PowerSource.OPERATION_READ, PowerSource.OPERATION_WRITE)

    @property
    def paper_source_index(self) -> int | None:
        """Index of the corresponding source in the paper's Section 5 list.

        Returns ``None`` for the bookkeeping-only categories (leakage).
        """
        mapping = {
            PowerSource.PRECHARGE_UNSELECTED: 1,
            PowerSource.ROW_TRANSITION_RESTORE: 2,
            PowerSource.LPTEST_DRIVER: 3,
            PowerSource.CELL_RES: 4,
            PowerSource.CONTROL_LOGIC: 5,
            PowerSource.OPERATION_READ: 0,
            PowerSource.OPERATION_WRITE: 0,
        }
        return mapping.get(self)


#: Sources whose energy the proposed low-power test mode targets.
SAVINGS_TARGET_SOURCES = frozenset({
    PowerSource.PRECHARGE_UNSELECTED,
    PowerSource.CELL_RES,
})

#: Sources introduced (or made relevant) by the proposed scheme itself.
OVERHEAD_SOURCES = frozenset({
    PowerSource.ROW_TRANSITION_RESTORE,
    PowerSource.LPTEST_DRIVER,
    PowerSource.CONTROL_LOGIC,
})
