"""Closed-form per-event power model (the paper's P_r, P_w, P_A, P_B).

Section 5 of the paper expresses the functional-mode and low-power-test-mode
average powers with four per-event quantities:

* ``P_r`` — memory power of one read operation,
* ``P_w`` — memory power of one write operation,
* ``P_A`` — power of one pre-charge circuit sustaining a RES for one cycle,
* ``P_B`` — power of restoring one column's bit lines at a row transition.

The behavioural memory measures these implicitly; this module derives the
same quantities in closed form from the technology description and the
array geometry, so that the analytical PRR model of :mod:`repro.core.prr`
can be evaluated for arbitrary array sizes (including the paper's full
512 x 512 array) without running a multi-million-cycle simulation, and so
the two paths can be cross-checked against each other in the test-suite.

All quantities are reported as *energy per clock cycle* (joules); the
corresponding average power is obtained by dividing by the clock period.
The paper's equations are ratios, so the distinction does not affect PRR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..circuit.technology import TechnologyParameters, default_technology
from ..sram.geometry import ArrayGeometry
from ..sram.timing import ClockCycle


@dataclass(frozen=True)
class OperationEnergies:
    """Per-event energies (joules per clock cycle / per event)."""

    read: float                    # P_r  (energy of one read cycle, selected column side)
    write: float                   # P_w  (energy of one write cycle, selected column side)
    res_per_column: float          # P_A  (one unselected pre-charged column, one cycle)
    restore_per_column: float      # P_B  (one column restored at a row transition, average)
    lptest_line: float             # energy of one LPtest line transition
    control_element: float         # energy of one added control element switching
    cell_res: float                # cell-side energy of one full RES (three orders below P_A)
    leakage_per_cycle: float       # whole-array leakage energy per cycle

    def as_dict(self) -> Dict[str, float]:
        return {
            "P_r": self.read,
            "P_w": self.write,
            "P_A": self.res_per_column,
            "P_B": self.restore_per_column,
            "lptest_line": self.lptest_line,
            "control_element": self.control_element,
            "cell_res": self.cell_res,
            "leakage_per_cycle": self.leakage_per_cycle,
        }


class PowerModel:
    """Closed-form per-event energy model for a given geometry/technology."""

    #: Fraction of VDD developed on a bit line during a read (matches
    #: :meth:`repro.sram.bitline.BitLinePair.develop_read_differential`).
    READ_SWING_FRACTION = 0.5
    #: Sense amplifier internal capacitance (matches the periphery model).
    SENSE_CAP = 12e-15
    #: Write driver internal capacitance (matches the periphery model).
    WRITE_DRIVER_CAP = 8e-15
    #: Crowbar factor of the write driver (matches the periphery model).
    WRITE_CROWBAR_FACTOR = 0.1
    #: Decoder gate load per address bit (matches the periphery model).
    DECODER_CAP_PER_BIT = 4 * 2.0e-15
    #: Extra column-mux load per selected column (matches the periphery model).
    COLUMN_MUX_CAP = 3.0e-15
    #: Fraction of the array's bit lines that have been discharged by the
    #: unselected cells when the row-transition restoration fires (the paper:
    #: "about 50 % of all the bit lines in the array", since the cells on a
    #: row discharge one line of each floating pair).
    ROW_TRANSITION_DISCHARGED_FRACTION = 0.5
    #: Ratio between cell-side and pre-charge-side RES energy (paper: three
    #: orders of magnitude).
    CELL_RES_RATIO = 1.0e-3

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None) -> None:
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.clock = ClockCycle.from_technology(self.tech)

    # ------------------------------------------------------------------
    # Elementary quantities
    # ------------------------------------------------------------------
    def bitline_capacitance(self) -> float:
        """Capacitance of one bit line: one *bank's* worth of cell drains.

        In a banked organisation each bank owns its own bit-line segment of
        ``rows_per_bank`` cells; the monolithic paper array (``banks=1``)
        keeps the full-height line.
        """
        return self.tech.bitline_capacitance(self.geometry.rows_per_bank)

    def address_bits(self, count: int) -> int:
        """Address bits needed to select among ``count`` entries (at least 1)."""
        bits = 0
        while (1 << bits) < count:
            bits += 1
        return max(1, bits)

    # Backwards-compatible alias (pre-1.1 private name).
    _address_bits = address_bits

    def row_decode_energy(self) -> float:
        """Row-decoder switching energy of one access (word line excluded)."""
        cap = self.address_bits(self.geometry.rows) * self.DECODER_CAP_PER_BIT
        return self.tech.swing_energy(cap)

    def column_decode_energy(self) -> float:
        """Column-decoder + column-mux switching energy of one access."""
        cap = (self.address_bits(self.geometry.words_per_row)
               * self.DECODER_CAP_PER_BIT
               + self.geometry.bits_per_word * self.COLUMN_MUX_CAP)
        return self.tech.swing_energy(cap)

    def decode_energy(self) -> float:
        """Row + column decode energy of one access (word line amortised)."""
        return self.row_decode_energy() + self.column_decode_energy()

    def read_column_energy(self) -> float:
        """Energy of one read on one column (sense + read-swing restoration).

        The per-column share of :meth:`read_energy`; the vectorized backend
        books it separately from the decode energy, so both backends consume
        the same definition.
        """
        c_bl = self.bitline_capacitance()
        swing = self.READ_SWING_FRACTION * self.tech.vdd
        return (self.tech.swing_energy(self.SENSE_CAP)
                + self.tech.swing_energy(c_bl, swing)
                * (1.0 + self.tech.precharge_overhead_factor))

    def write_column_energy(self) -> float:
        """Energy of one write on one column (drivers + full restoration)."""
        c_bl = self.bitline_capacitance()
        full_swing = self.tech.vdd
        return (self.tech.swing_energy(self.WRITE_DRIVER_CAP)
                + self.WRITE_CROWBAR_FACTOR * c_bl * full_swing * self.tech.vdd
                + self.tech.swing_energy(c_bl, full_swing)
                * (1.0 + self.tech.precharge_overhead_factor))

    def read_energy(self) -> float:
        """P_r: one read cycle (decode, sense, selected-column restoration)."""
        return (self.decode_energy()
                + self.geometry.bits_per_word * self.read_column_energy())

    def write_energy(self) -> float:
        """P_w: one write cycle (decode, drivers, full bit-line restoration)."""
        return (self.decode_energy()
                + self.geometry.bits_per_word * self.write_column_energy())

    def res_energy_per_column(self) -> float:
        """P_A: pre-charge circuit sustaining one RES for one operation phase."""
        return (self.tech.vdd * self.tech.res_equilibrium_current
                * self.clock.operation_duration)

    def restore_energy_per_column(self) -> float:
        """P_B: average energy to restore one column at the row transition.

        Half of the bit-line pairs' lines have been discharged to (or close
        to) ground by the unselected cells; restoring a pair therefore costs
        on average about one full-swing bit-line recharge.
        """
        c_bl = self.bitline_capacitance()
        return (self.tech.swing_energy(c_bl, self.tech.vdd)
                * (1.0 + self.tech.precharge_overhead_factor)
                * 2.0 * self.ROW_TRANSITION_DISCHARGED_FRACTION)

    def lptest_line_energy(self) -> float:
        """Energy of one transition of the LPtest line (word-line-class load)."""
        cap = self.tech.wordline_capacitance(self.geometry.columns)
        return self.tech.swing_energy(cap)

    def bank_select_energy(self) -> float:
        """Energy of one bank-select transition (beyond-paper, banked arrays).

        The bank-select lines span the column pitch of one bank like a word
        line does, so the event energy is word-line-class.  Both backends
        book exactly this quantity per bank transition, which is what keeps
        the differential suite's 1e-9 energy agreement.
        """
        cap = self.tech.wordline_capacitance(self.geometry.columns)
        return self.tech.swing_energy(cap)

    def control_element_energy(self) -> float:
        """Switching energy of one added per-column control element."""
        return self.tech.swing_energy(self.tech.control_element_cap
                                      + self.tech.precharge_gate_cap)

    def cell_res_energy(self) -> float:
        """Cell-side energy of one full RES."""
        return self.res_energy_per_column() * self.CELL_RES_RATIO

    def leakage_energy_per_cycle(self) -> float:
        return (self.geometry.cell_count * self.tech.cell_leakage_current
                * self.tech.vdd * self.clock.period)

    # ------------------------------------------------------------------
    def energies(self) -> OperationEnergies:
        """All per-event energies bundled together."""
        return OperationEnergies(
            read=self.read_energy(),
            write=self.write_energy(),
            res_per_column=self.res_energy_per_column(),
            restore_per_column=self.restore_energy_per_column(),
            lptest_line=self.lptest_line_energy(),
            control_element=self.control_element_energy(),
            cell_res=self.cell_res_energy(),
            leakage_per_cycle=self.leakage_energy_per_cycle(),
        )
