"""Address orders — the first degree of freedom of March tests.

March notation only requires that the ``⇓`` sequence be the exact reverse of
the ``⇑`` sequence; *which* permutation of the address space ``⇑`` denotes
is free (the paper's Degree Of Freedom #1), and fault coverage does not
depend on the choice for the classical fault models.  The paper exploits
this freedom by picking the "word line after word line" order, which makes
the next column to be accessed predictable and lets all other pre-charge
circuits be switched off.

An :class:`AddressOrder` maps a logical position ``0 .. N-1`` in the chosen
sequence to an ``(row, word)`` coordinate of the array.  All orders are
permutations of the full address space; descending traversal is always the
exact reverse of ascending traversal, as DOF 1 requires.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

from ..sram.geometry import ArrayGeometry


def _numpy():
    """Import numpy on demand; ``None`` when unavailable (scalar fallback)."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - the container ships numpy
        return None
    return np


class OrderingError(Exception):
    """Raised for malformed address orders."""


Coordinate = Tuple[int, int]


class AddressOrder:
    """Base class: a named permutation of the array's word addresses."""

    name = "abstract"

    def __init__(self, geometry: ArrayGeometry) -> None:
        self.geometry = geometry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.geometry.word_count

    def coordinate_at(self, position: int) -> Coordinate:
        """(row, word) visited at ``position`` of the ascending sequence."""
        raise NotImplementedError

    def ascending(self) -> Iterator[Coordinate]:
        for position in range(len(self)):
            yield self.coordinate_at(position)

    def descending(self) -> Iterator[Coordinate]:
        """Exact reverse of :meth:`ascending` (the DOF-1 requirement)."""
        for position in reversed(range(len(self))):
            yield self.coordinate_at(position)

    def sequence(self, ascending: bool = True) -> List[Coordinate]:
        """The full coordinate list of the chosen traversal direction.

        Orders with a closed-form :meth:`_build_coordinate_arrays` (every
        registry order) materialise the list from the cached numpy arrays
        in bulk — two orders of magnitude faster than walking
        :meth:`coordinate_at` position by position on paper-scale
        geometries; other subclasses (and numpy-free installs) keep the
        scalar walk.
        """
        bulk = self._bulk_expansion_available()
        if bulk:
            rows, words = self.coordinate_arrays()
            coordinates = list(zip(rows.tolist(), words.tolist()))
            if not ascending:
                coordinates.reverse()
            return coordinates
        return list(self.ascending() if ascending else self.descending())

    def _bulk_expansion_available(self) -> bool:
        """True when :meth:`coordinate_arrays` does not itself need
        :meth:`sequence` (a closed-form override exists) and numpy loads."""
        closed_form = (type(self)._build_coordinate_arrays
                       is not AddressOrder._build_coordinate_arrays)
        return closed_form and _numpy() is not None

    def coordinate_arrays(self):
        """The ascending sequence as two parallel ``numpy`` integer arrays.

        Returns ``(rows, words)`` where ``rows[i], words[i]`` is the
        coordinate visited at position ``i``.  This is the bulk form the
        vectorized execution backend (:mod:`repro.engine`) consumes; the
        result is materialised lazily and cached on the order instance, so
        repeated runs over the same order pay the expansion only once.
        Subclasses whose sequence has an arithmetic structure override
        :meth:`_build_coordinate_arrays` with a closed-form construction.
        Requires ``numpy``.
        """
        cached = getattr(self, "_coordinate_arrays_cache", None)
        if cached is None:
            cached = self._build_coordinate_arrays()
            self._coordinate_arrays_cache = cached
        return cached

    def _build_coordinate_arrays(self):
        """Uncached expansion: one :meth:`coordinate_at` call per position."""
        import numpy as np

        coords = np.asarray(self.sequence(), dtype=np.int64)
        coords = coords.reshape(len(self), 2)
        return (np.ascontiguousarray(coords[:, 0]),
                np.ascontiguousarray(coords[:, 1]))

    # ------------------------------------------------------------------
    def rank_array(self):
        """``rank[linear_address] = position`` in the ascending sequence.

        The inverse permutation of :meth:`coordinate_arrays`, used by the
        vectorized fault-campaign engine to locate every victim/aggressor
        in one gather.  Materialised lazily and cached on the order
        instance (like the coordinate arrays), so campaigns sharing one
        order object — e.g. through the sweep orchestrator's per-worker
        order memo — pay the inversion exactly once.  Requires ``numpy``.
        """
        cached = getattr(self, "_rank_array_cache", None)
        if cached is None:
            import numpy as np

            rows, words = self.coordinate_arrays()
            linear = rows * self.geometry.words_per_row + words
            cached = np.empty(self.geometry.word_count, dtype=np.int64)
            cached[linear] = np.arange(linear.size, dtype=np.int64)
            self._rank_array_cache = cached
        return cached

    # ------------------------------------------------------------------
    def is_wordline_sequential(self) -> bool:
        """True when consecutive positions stay on a row until it is exhausted.

        This is the property the low-power test mode needs: the next access
        is either the next word of the same row or the first word of an
        adjacent traversal step, so only the selected column and its
        successor require pre-charge.  The verdict is cached on the order
        instance (orders are immutable permutations) and, with numpy
        available, computed as two array reductions instead of a
        per-position Python walk — the check guards *every* low-power BIST
        run, so on paper-scale geometries the scalar walk used to cost
        more than the measurement itself.
        """
        cached = getattr(self, "_wordline_sequential_cache", None)
        if cached is None:
            cached = self._compute_wordline_sequential()
            self._wordline_sequential_cache = cached
        return cached

    def _compute_wordline_sequential(self) -> bool:
        np = _numpy()
        if np is not None:
            rows, _ = self.coordinate_arrays()
            if rows.size == 0:
                return True
            # Rows at which the traversal switches word line, including the
            # very first: sequential means no row ever appears twice there.
            switches = rows[np.concatenate(
                ([True], rows[1:] != rows[:-1]))]
            return int(np.unique(switches).size) == int(switches.size)
        previous_row: int | None = None
        seen_rows: set[int] = set()
        for row, _ in self.ascending():
            if row != previous_row:
                if row in seen_rows:
                    return False
                seen_rows.add(row)
                previous_row = row
        return True

    def describe(self) -> str:
        return f"{self.name} order on {self.geometry.describe()}"


class RowMajorOrder(AddressOrder):
    """'Word line after word line' — the order the paper's test mode requires.

    Words are visited column by column within a row, rows in ascending
    index order.
    """

    name = "row-major (word line after word line)"

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        return self.geometry.coordinates_of(position)

    def _build_coordinate_arrays(self):
        """Closed-form bulk expansion (no per-position Python loop)."""
        import numpy as np

        positions = np.arange(len(self), dtype=np.int64)
        return np.divmod(positions, self.geometry.words_per_row)


class ColumnMajorOrder(AddressOrder):
    """Fast-row order: all rows of a column before moving to the next column.

    This is the typical functional-BIST "fast row" order; it maximises
    pre-charge activity and serves as the contrast case in the DOF-1
    coverage experiments.
    """

    name = "column-major (fast row)"

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        word, row = divmod(position, self.geometry.rows)
        return (row, word)

    def _build_coordinate_arrays(self):
        """Closed-form bulk expansion (no per-position Python loop)."""
        import numpy as np

        positions = np.arange(len(self), dtype=np.int64)
        words, rows = np.divmod(positions, self.geometry.rows)
        return rows, words


class PseudoRandomOrder(AddressOrder):
    """A fixed pseudo-random permutation of the address space.

    Used to demonstrate that fault coverage is independent of the address
    sequence (DOF 1) even for an arbitrary permutation; it is of course the
    worst case for pre-charge predictability.
    """

    name = "pseudo-random permutation"

    def __init__(self, geometry: ArrayGeometry, seed: int = 2006) -> None:
        super().__init__(geometry)
        self.seed = seed
        rng = random.Random(seed)
        self._permutation = list(range(geometry.word_count))
        rng.shuffle(self._permutation)

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        return self.geometry.coordinates_of(self._permutation[position])

    def _build_coordinate_arrays(self):
        """Bulk expansion of the stored permutation (one divmod pass)."""
        import numpy as np

        addresses = np.asarray(self._permutation, dtype=np.int64)
        return np.divmod(addresses, self.geometry.words_per_row)


class AddressComplementOrder(AddressOrder):
    """Address-complement order (2^i jumps), common in decoder-delay testing.

    Each pair of consecutive accesses toggles all address bits, producing
    maximal address-bus activity; useful as a high-stress contrast case in
    the power ablations.
    """

    name = "address complement"

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        base = position // 2
        count = len(self)
        if position % 2 == 0:
            address = base
        else:
            address = (count - 1) - base
        return self.geometry.coordinates_of(address)

    def _build_coordinate_arrays(self):
        """Closed-form bulk expansion (no per-position Python loop)."""
        import numpy as np

        positions = np.arange(len(self), dtype=np.int64)
        base = positions // 2
        addresses = np.where(positions % 2 == 0, base, len(self) - 1 - base)
        return np.divmod(addresses, self.geometry.words_per_row)


class RowMajorSnakeOrder(AddressOrder):
    """Row-major order with alternating column direction on each row.

    Still word-line sequential (so still compatible with the low-power test
    mode's 'only the neighbouring column needs pre-charge' argument, with
    the neighbour alternating side), included as an extension/ablation.
    """

    name = "row-major snake"

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        words_per_row = self.geometry.words_per_row
        row, offset = divmod(position, words_per_row)
        if row % 2 == 1:
            offset = words_per_row - 1 - offset
        return (row, offset)

    def _build_coordinate_arrays(self):
        """Closed-form bulk expansion (no per-position Python loop)."""
        import numpy as np

        positions = np.arange(len(self), dtype=np.int64)
        words_per_row = self.geometry.words_per_row
        rows, offsets = np.divmod(positions, words_per_row)
        words = np.where(rows % 2 == 1, words_per_row - 1 - offsets, offsets)
        return rows, words


#: Registry of the named orders, for CLI-style lookups in benches/examples.
ORDER_REGISTRY = {
    "row-major": RowMajorOrder,
    "wordline": RowMajorOrder,
    "column-major": ColumnMajorOrder,
    "fast-row": ColumnMajorOrder,
    "pseudo-random": PseudoRandomOrder,
    "address-complement": AddressComplementOrder,
    "snake": RowMajorSnakeOrder,
}


def make_order(name: str, geometry: ArrayGeometry, **kwargs) -> AddressOrder:
    """Instantiate a registered order by name."""
    key = name.strip().lower()
    if key not in ORDER_REGISTRY:
        raise OrderingError(
            f"unknown address order {name!r}; available: {sorted(ORDER_REGISTRY)}")
    return ORDER_REGISTRY[key](geometry, **kwargs)


def verify_is_permutation(order: AddressOrder) -> bool:
    """Check that the order visits every (row, word) exactly once."""
    seen = set()
    for coordinate in order.ascending():
        if coordinate in seen:
            return False
        seen.add(coordinate)
    return len(seen) == order.geometry.word_count
