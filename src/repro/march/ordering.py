"""Address orders — the first degree of freedom of March tests.

March notation only requires that the ``⇓`` sequence be the exact reverse of
the ``⇑`` sequence; *which* permutation of the address space ``⇑`` denotes
is free (the paper's Degree Of Freedom #1), and fault coverage does not
depend on the choice for the classical fault models.  The paper exploits
this freedom by picking the "word line after word line" order, which makes
the next column to be accessed predictable and lets all other pre-charge
circuits be switched off.

An :class:`AddressOrder` maps a logical position ``0 .. N-1`` in the chosen
sequence to an ``(row, word)`` coordinate of the array.  All orders are
permutations of the full address space; descending traversal is always the
exact reverse of ascending traversal, as DOF 1 requires.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence, Tuple

from ..sram.geometry import ArrayGeometry


class OrderingError(Exception):
    """Raised for malformed address orders."""


Coordinate = Tuple[int, int]


class AddressOrder:
    """Base class: a named permutation of the array's word addresses."""

    name = "abstract"

    def __init__(self, geometry: ArrayGeometry) -> None:
        self.geometry = geometry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.geometry.word_count

    def coordinate_at(self, position: int) -> Coordinate:
        """(row, word) visited at ``position`` of the ascending sequence."""
        raise NotImplementedError

    def ascending(self) -> Iterator[Coordinate]:
        for position in range(len(self)):
            yield self.coordinate_at(position)

    def descending(self) -> Iterator[Coordinate]:
        """Exact reverse of :meth:`ascending` (the DOF-1 requirement)."""
        for position in reversed(range(len(self))):
            yield self.coordinate_at(position)

    def sequence(self, ascending: bool = True) -> List[Coordinate]:
        return list(self.ascending() if ascending else self.descending())

    def coordinate_arrays(self):
        """The ascending sequence as two parallel ``numpy`` integer arrays.

        Returns ``(rows, words)`` where ``rows[i], words[i]`` is the
        coordinate visited at position ``i``.  This is the bulk form the
        vectorized execution backend (:mod:`repro.engine`) consumes; the
        result is materialised lazily and cached on the order instance, so
        repeated runs over the same order pay the expansion only once.
        Subclasses whose sequence has an arithmetic structure override
        :meth:`_build_coordinate_arrays` with a closed-form construction.
        Requires ``numpy``.
        """
        cached = getattr(self, "_coordinate_arrays_cache", None)
        if cached is None:
            cached = self._build_coordinate_arrays()
            self._coordinate_arrays_cache = cached
        return cached

    def _build_coordinate_arrays(self):
        """Uncached expansion: one :meth:`coordinate_at` call per position."""
        import numpy as np

        coords = np.asarray(self.sequence(), dtype=np.int64)
        coords = coords.reshape(len(self), 2)
        return (np.ascontiguousarray(coords[:, 0]),
                np.ascontiguousarray(coords[:, 1]))

    # ------------------------------------------------------------------
    def is_wordline_sequential(self) -> bool:
        """True when consecutive positions stay on a row until it is exhausted.

        This is the property the low-power test mode needs: the next access
        is either the next word of the same row or the first word of an
        adjacent traversal step, so only the selected column and its
        successor require pre-charge.
        """
        previous_row: int | None = None
        seen_rows: set[int] = set()
        for row, _ in self.ascending():
            if row != previous_row:
                if row in seen_rows:
                    return False
                seen_rows.add(row)
                previous_row = row
        return True

    def describe(self) -> str:
        return f"{self.name} order on {self.geometry.describe()}"


class RowMajorOrder(AddressOrder):
    """'Word line after word line' — the order the paper's test mode requires.

    Words are visited column by column within a row, rows in ascending
    index order.
    """

    name = "row-major (word line after word line)"

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        return self.geometry.coordinates_of(position)

    def _build_coordinate_arrays(self):
        """Closed-form bulk expansion (no per-position Python loop)."""
        import numpy as np

        positions = np.arange(len(self), dtype=np.int64)
        return np.divmod(positions, self.geometry.words_per_row)


class ColumnMajorOrder(AddressOrder):
    """Fast-row order: all rows of a column before moving to the next column.

    This is the typical functional-BIST "fast row" order; it maximises
    pre-charge activity and serves as the contrast case in the DOF-1
    coverage experiments.
    """

    name = "column-major (fast row)"

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        word, row = divmod(position, self.geometry.rows)
        return (row, word)


class PseudoRandomOrder(AddressOrder):
    """A fixed pseudo-random permutation of the address space.

    Used to demonstrate that fault coverage is independent of the address
    sequence (DOF 1) even for an arbitrary permutation; it is of course the
    worst case for pre-charge predictability.
    """

    name = "pseudo-random permutation"

    def __init__(self, geometry: ArrayGeometry, seed: int = 2006) -> None:
        super().__init__(geometry)
        self.seed = seed
        rng = random.Random(seed)
        self._permutation = list(range(geometry.word_count))
        rng.shuffle(self._permutation)

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        return self.geometry.coordinates_of(self._permutation[position])


class AddressComplementOrder(AddressOrder):
    """Address-complement order (2^i jumps), common in decoder-delay testing.

    Each pair of consecutive accesses toggles all address bits, producing
    maximal address-bus activity; useful as a high-stress contrast case in
    the power ablations.
    """

    name = "address complement"

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        base = position // 2
        count = len(self)
        if position % 2 == 0:
            address = base
        else:
            address = (count - 1) - base
        return self.geometry.coordinates_of(address)


class RowMajorSnakeOrder(AddressOrder):
    """Row-major order with alternating column direction on each row.

    Still word-line sequential (so still compatible with the low-power test
    mode's 'only the neighbouring column needs pre-charge' argument, with
    the neighbour alternating side), included as an extension/ablation.
    """

    name = "row-major snake"

    def coordinate_at(self, position: int) -> Coordinate:
        if not 0 <= position < len(self):
            raise OrderingError(f"position {position} out of range [0, {len(self)})")
        words_per_row = self.geometry.words_per_row
        row, offset = divmod(position, words_per_row)
        if row % 2 == 1:
            offset = words_per_row - 1 - offset
        return (row, offset)


#: Registry of the named orders, for CLI-style lookups in benches/examples.
ORDER_REGISTRY = {
    "row-major": RowMajorOrder,
    "wordline": RowMajorOrder,
    "column-major": ColumnMajorOrder,
    "fast-row": ColumnMajorOrder,
    "pseudo-random": PseudoRandomOrder,
    "address-complement": AddressComplementOrder,
    "snake": RowMajorSnakeOrder,
}


def make_order(name: str, geometry: ArrayGeometry, **kwargs) -> AddressOrder:
    """Instantiate a registered order by name."""
    key = name.strip().lower()
    if key not in ORDER_REGISTRY:
        raise OrderingError(
            f"unknown address order {name!r}; available: {sorted(ORDER_REGISTRY)}")
    return ORDER_REGISTRY[key](geometry, **kwargs)


def verify_is_permutation(order: AddressOrder) -> bool:
    """Check that the order visits every (row, word) exactly once."""
    seen = set()
    for coordinate in order.ascending():
        if coordinate in seen:
            return False
        seen.add(coordinate)
    return len(seen) == order.geometry.word_count
