"""March elements: an addressing direction plus a sequence of operations.

A March element such as ``⇑(r0,w1)`` applies its operations, in order, to
every address of the memory, visiting the addresses in the direction given
by its arrow: ``⇑`` (ascending), ``⇓`` (descending — the exact reverse of
``⇑``), or ``⇕`` (either direction is acceptable).  Which concrete sequence
"ascending" means is a degree of freedom of March tests (DOF 1 in the
paper's terminology) — that choice lives in
:mod:`repro.march.ordering`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Tuple

from .operations import MarchOperation, MarchSyntaxError


class AddressingDirection(Enum):
    """Direction arrow of a March element."""

    UP = "up"        # ⇑ : the chosen ascending sequence
    DOWN = "down"    # ⇓ : the exact reverse of the ascending sequence
    ANY = "any"      # ⇕ : either direction may be used

    @property
    def arrow(self) -> str:
        return {"up": "⇑", "down": "⇓", "any": "⇕"}[self.value]

    @classmethod
    def from_symbol(cls, symbol: str) -> "AddressingDirection":
        """Parse an arrow or its ASCII fallback (``u``/``d``/``b`` or ``^``/``v``/``*``)."""
        token = symbol.strip().lower()
        mapping = {
            "⇑": cls.UP, "↑": cls.UP, "u": cls.UP, "^": cls.UP,
            "⇓": cls.DOWN, "↓": cls.DOWN, "d": cls.DOWN, "v": cls.DOWN,
            "⇕": cls.ANY, "↕": cls.ANY, "b": cls.ANY, "*": cls.ANY,
        }
        if token not in mapping:
            raise MarchSyntaxError(f"unknown addressing direction symbol {symbol!r}")
        return mapping[token]


@dataclass(frozen=True)
class MarchElement:
    """One March element: a direction and a non-empty operation tuple."""

    direction: AddressingDirection
    operations: Tuple[MarchOperation, ...]

    def __post_init__(self) -> None:
        if not self.operations:
            raise MarchSyntaxError("a March element needs at least one operation")

    # ------------------------------------------------------------------
    @property
    def operation_count(self) -> int:
        return len(self.operations)

    @property
    def read_count(self) -> int:
        return sum(1 for op in self.operations if op.is_read)

    @property
    def write_count(self) -> int:
        return sum(1 for op in self.operations if op.is_write)

    @property
    def is_initialising(self) -> bool:
        """True when the element only writes (a background-setting element)."""
        return all(op.is_write for op in self.operations)

    def final_written_value(self) -> int | None:
        """Value left in every visited cell after this element, if any write occurs."""
        for op in reversed(self.operations):
            if op.is_write:
                return op.value
        return None

    # ------------------------------------------------------------------
    def inverted_data(self) -> "MarchElement":
        """The same element with every data value complemented."""
        return MarchElement(self.direction,
                            tuple(op.inverted() for op in self.operations))

    def with_direction(self, direction: AddressingDirection) -> "MarchElement":
        """Copy of this element with a different direction arrow."""
        return MarchElement(direction, self.operations)

    # ------------------------------------------------------------------
    def to_notation(self, ascii_only: bool = False) -> str:
        arrow = {"up": "u", "down": "d", "any": "b"}[self.direction.value] if ascii_only \
            else self.direction.arrow
        ops = ",".join(op.to_notation() for op in self.operations)
        return f"{arrow}({ops})"

    @classmethod
    def from_parts(cls, direction_symbol: str,
                   operation_tokens: Iterable[str]) -> "MarchElement":
        direction = AddressingDirection.from_symbol(direction_symbol)
        operations = tuple(MarchOperation.from_notation(tok) for tok in operation_tokens)
        return cls(direction, operations)

    def __str__(self) -> str:
        return self.to_notation()
