"""Parser for March notation strings.

Accepts the usual textbook notation with Unicode arrows as well as an ASCII
fallback::

    {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}
    {b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0)}

Braces are optional; elements are separated by ``;``.  Delay/pause markers
(``Del``) that some algorithms (e.g. March G) insert for data-retention
testing are accepted and ignored with a warning flag, since they do not
contribute operations, reads or writes to the paper's Table 1 statistics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple

from .algorithm import MarchAlgorithm
from .element import MarchElement
from .operations import MarchSyntaxError

_ELEMENT_RE = re.compile(
    r"^(?P<dir>[⇑⇓⇕↑↓↕uvdb^*])\s*\(\s*(?P<ops>[^()]*)\s*\)$",
    re.IGNORECASE,
)
_DELAY_RE = re.compile(r"^(del|delay|pause)$", re.IGNORECASE)


@dataclass(frozen=True)
class ParseResult:
    """Outcome of parsing a March notation string."""

    algorithm: MarchAlgorithm
    ignored_delays: int


def parse_march(notation: str, name: str = "custom",
                description: str = "") -> MarchAlgorithm:
    """Parse ``notation`` into a :class:`MarchAlgorithm` (delays dropped)."""
    return parse_march_detailed(notation, name=name, description=description).algorithm


def parse_march_detailed(notation: str, name: str = "custom",
                         description: str = "") -> ParseResult:
    """Parse ``notation`` and also report how many delay markers were dropped."""
    text = notation.strip()
    if not text:
        raise MarchSyntaxError("empty March notation")
    if text.startswith("{"):
        if not text.endswith("}"):
            raise MarchSyntaxError("unbalanced braces in March notation")
        text = text[1:-1]
    elements: List[MarchElement] = []
    ignored = 0
    for raw_chunk in text.split(";"):
        chunk = raw_chunk.strip()
        if not chunk:
            continue
        if _DELAY_RE.match(chunk):
            ignored += 1
            continue
        match = _ELEMENT_RE.match(chunk)
        if not match:
            raise MarchSyntaxError(f"cannot parse March element {chunk!r}")
        ops_text = match.group("ops").strip()
        if not ops_text:
            raise MarchSyntaxError(f"March element {chunk!r} has no operations")
        tokens = [tok for tok in re.split(r"[,\s]+", ops_text) if tok]
        elements.append(MarchElement.from_parts(match.group("dir"), tokens))
    if not elements:
        raise MarchSyntaxError("March notation contains no elements")
    algorithm = MarchAlgorithm(name=name, elements=tuple(elements),
                               description=description)
    return ParseResult(algorithm=algorithm, ignored_delays=ignored)


def round_trip(algorithm: MarchAlgorithm) -> MarchAlgorithm:
    """Parse an algorithm's own notation back (used by property tests)."""
    return parse_march(algorithm.to_notation(), name=algorithm.name,
                       description=algorithm.description)
