"""Library of standard March algorithms.

Includes the five algorithms evaluated in the paper's Table 1 (March C-,
March SS, MATS+, March SR and March G) plus the other classical tests a
memory-test toolkit is expected to ship (MATS, MATS++, March X, March Y,
March A, March B, March U, March LR, PMOVI), all expressed with the
notation parser so their definitions read exactly like the literature.

Table 1 statistics check (elements / operations / reads / writes per
address):

=============  ====  =====  =====  ======
algorithm      #elm  #oper  #read  #write
=============  ====  =====  =====  ======
March C-       6     10     5      5
March SS       6     22     13     9
MATS+          3     5      2      3
March SR       6     14     8      6
March G        7     23     10     13
=============  ====  =====  =====  ======

March G note: March G is March B followed by two delay/read blocks for data
retention; the two ``Del`` pauses appear in the notation but contribute no
operations, so the Table 1 statistics count its 7 March elements and 23
operations exactly as the paper does.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .algorithm import MarchAlgorithm
from .parser import parse_march


def _define(name: str, notation: str, description: str) -> MarchAlgorithm:
    algorithm = parse_march(notation, name=name, description=description)
    algorithm.validate()
    return algorithm


# ----------------------------------------------------------------------
# The five algorithms of the paper's Table 1.
# ----------------------------------------------------------------------
MARCH_CM = _define(
    "March C-",
    "{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}",
    "Marinescu's March C-: detects SAFs, TFs, AFs and unlinked CFs; "
    "the workhorse 10N March test.",
)

MARCH_SS = _define(
    "March SS",
    "{⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); "
    "⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0)}",
    "Hamdioui's March SS (22N): covers all simple static faults including "
    "read destructive and deceptive read destructive faults.",
)

MATS_PLUS = _define(
    "MATS+",
    "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}",
    "MATS+ (5N): address decoder faults and stuck-at faults.",
)

MARCH_SR = _define(
    "March SR",
    "{⇓(w0); ⇑(r0,w1,r1,w0); ⇑(r0,r0); ⇑(w1); ⇓(r1,w0,r0,w1); ⇓(r1,r1)}",
    "March SR (14N): targets simple realistic faults including read "
    "destructive and incorrect read faults.",
)

MARCH_G = _define(
    "March G",
    "{⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0); "
    "Del; ⇕(r0,w1,r1); Del; ⇕(r1,w0,r0)}",
    "March G (23N + 2 retention pauses): March B followed by two "
    "delay/read blocks; 7 elements, 10 reads, 13 writes as in the paper's Table 1.",
)

# ----------------------------------------------------------------------
# Other classical algorithms (completeness of the toolkit).
# ----------------------------------------------------------------------
MATS = _define(
    "MATS",
    "{⇕(w0); ⇕(r0,w1); ⇕(r1)}",
    "MATS (4N): the minimal stuck-at test.",
)

MATS_PLUS_PLUS = _define(
    "MATS++",
    "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}",
    "MATS++ (6N): MATS+ plus a trailing read for SOF coverage.",
)

MARCH_X = _define(
    "March X",
    "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)}",
    "March X (6N): unlinked inversion coupling faults.",
)

MARCH_Y = _define(
    "March Y",
    "{⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)}",
    "March Y (8N): March X plus transition fault read-back.",
)

MARCH_A = _define(
    "March A",
    "{⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}",
    "March A (15N): linked idempotent coupling faults.",
)

MARCH_B = _define(
    "March B",
    "{⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}",
    "March B (17N): March A plus linked TF/CF coverage.",
)

MARCH_U = _define(
    "March U",
    "{⇕(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0)}",
    "March U (13N): unlinked faults including SOFs and some linked faults.",
)

MARCH_LR = _define(
    "March LR",
    "{⇕(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); ⇑(r0)}",
    "March LR (14N): realistic linked coupling faults.",
)

PMOVI = _define(
    "PMOVI",
    "{⇓(w0); ⇑(r0,w1,r1); ⇑(r1,w0,r0); ⇓(r0,w1,r1); ⇓(r1,w0,r0)}",
    "PMOVI (13N): a March-like test with per-address read-after-write verification.",
)

MARCH_C = _define(
    "March C",
    "{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇕(r0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}",
    "Original March C (11N); March C- removes the redundant middle element.",
)


#: The algorithms evaluated in the paper's Table 1, in the paper's row order.
PAPER_TABLE1_ALGORITHMS: Tuple[MarchAlgorithm, ...] = (
    MARCH_CM,
    MARCH_SS,
    MATS_PLUS,
    MARCH_SR,
    MARCH_G,
)

#: Every algorithm shipped by the library, keyed by canonical name.
ALGORITHM_LIBRARY: Dict[str, MarchAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        MARCH_CM, MARCH_SS, MATS_PLUS, MARCH_SR, MARCH_G,
        MATS, MATS_PLUS_PLUS, MARCH_X, MARCH_Y, MARCH_A, MARCH_B,
        MARCH_U, MARCH_LR, PMOVI, MARCH_C,
    )
}


def get_algorithm(name: str) -> MarchAlgorithm:
    """Look up an algorithm by name (case-insensitive, ignoring spaces/dashes)."""
    def canonical(text: str) -> str:
        # Keep '+' and '-' so that e.g. "March C-" and "March C", or "MATS"
        # and "MATS+", stay distinct.
        return "".join(ch for ch in text.lower() if ch.isalnum() or ch in "+-")

    wanted = canonical(name)
    for algorithm in ALGORITHM_LIBRARY.values():
        if canonical(algorithm.name) == wanted:
            return algorithm
    raise KeyError(
        f"unknown March algorithm {name!r}; available: {sorted(ALGORITHM_LIBRARY)}"
    )


def all_algorithms() -> List[MarchAlgorithm]:
    """All library algorithms, paper's Table 1 entries first."""
    rest = [a for a in ALGORITHM_LIBRARY.values() if a not in PAPER_TABLE1_ALGORITHMS]
    return list(PAPER_TABLE1_ALGORITHMS) + rest
