"""Primitive March operations (r0, r1, w0, w1).

March notation builds tests from per-address operations: write a value
(``w0``/``w1``) or read and compare against an expected value
(``r0``/``r1``).  This module provides the operation value type shared by
the notation parser, the algorithm library, the fault simulator and the
power/test session.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MarchSyntaxError(Exception):
    """Raised when March notation cannot be parsed."""


class OperationKind(Enum):
    """Type of a primitive March operation."""

    READ = "r"
    WRITE = "w"


@dataclass(frozen=True)
class MarchOperation:
    """One primitive operation applied to the currently addressed cell.

    ``value`` is the written value for a write, and the *expected* read
    value for a read (March reads always carry an expectation; a mismatch is
    a fault detection).
    """

    kind: OperationKind
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise MarchSyntaxError(f"operation value must be 0 or 1, got {self.value!r}")

    # ------------------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.kind is OperationKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OperationKind.WRITE

    def inverted(self) -> "MarchOperation":
        """The same operation on the complemented data value."""
        return MarchOperation(self.kind, 1 - self.value)

    # ------------------------------------------------------------------
    def to_notation(self) -> str:
        return f"{self.kind.value}{self.value}"

    @classmethod
    def from_notation(cls, text: str) -> "MarchOperation":
        """Parse ``'r0'``, ``'r1'``, ``'w0'`` or ``'w1'`` (case-insensitive)."""
        token = text.strip().lower()
        if len(token) != 2:
            raise MarchSyntaxError(f"malformed operation token {text!r}")
        kind_char, value_char = token[0], token[1]
        if kind_char not in ("r", "w"):
            raise MarchSyntaxError(
                f"operation must start with 'r' or 'w', got {text!r}")
        if value_char not in ("0", "1"):
            raise MarchSyntaxError(
                f"operation value must be 0 or 1, got {text!r}")
        kind = OperationKind.READ if kind_char == "r" else OperationKind.WRITE
        return cls(kind, int(value_char))

    def __str__(self) -> str:
        return self.to_notation()


# Convenience singletons used heavily by the algorithm library.
R0 = MarchOperation(OperationKind.READ, 0)
R1 = MarchOperation(OperationKind.READ, 1)
W0 = MarchOperation(OperationKind.WRITE, 0)
W1 = MarchOperation(OperationKind.WRITE, 1)
