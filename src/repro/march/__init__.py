"""March test substrate: notation, algorithms, address orders, execution.

The paper's contribution relies on a property of March tests (the first
degree of freedom: the address sequence is free), so the repository ships a
complete March toolkit: operation/element/algorithm types, a notation
parser, the classical algorithm library including the five tests of the
paper's Table 1, the address orders that exercise DOF 1, and the execution
walker that expands a test into the primitive access stream consumed by the
fault simulator and the power session.
"""

from .operations import MarchOperation, MarchSyntaxError, OperationKind, R0, R1, W0, W1
from .element import AddressingDirection, MarchElement
from .algorithm import MarchAlgorithm, MarchValidationError
from .parser import ParseResult, parse_march, parse_march_detailed, round_trip
from .library import (
    ALGORITHM_LIBRARY,
    MARCH_A,
    MARCH_B,
    MARCH_C,
    MARCH_CM,
    MARCH_G,
    MARCH_LR,
    MARCH_SR,
    MARCH_SS,
    MARCH_U,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS,
    MATS_PLUS_PLUS,
    PAPER_TABLE1_ALGORITHMS,
    PMOVI,
    all_algorithms,
    get_algorithm,
)
from .ordering import (
    AddressComplementOrder,
    AddressOrder,
    ColumnMajorOrder,
    ORDER_REGISTRY,
    OrderingError,
    PseudoRandomOrder,
    RowMajorOrder,
    RowMajorSnakeOrder,
    make_order,
    verify_is_permutation,
)
from .execution import (
    AccessStep,
    OperationTrace,
    TraceCache,
    TraceElement,
    compile_trace,
    count_steps,
    element_coordinates,
    resolve_direction,
    row_transition_count,
    walk,
)
from .dof import (
    AddressSequenceChoice,
    DegreeOfFreedom,
    all_degrees,
    complement_data,
    coverage_equivalence_orders,
    paper_choice,
)

__all__ = [
    "MarchOperation", "MarchSyntaxError", "OperationKind", "R0", "R1", "W0", "W1",
    "AddressingDirection", "MarchElement",
    "MarchAlgorithm", "MarchValidationError",
    "ParseResult", "parse_march", "parse_march_detailed", "round_trip",
    "ALGORITHM_LIBRARY", "PAPER_TABLE1_ALGORITHMS", "all_algorithms", "get_algorithm",
    "MARCH_A", "MARCH_B", "MARCH_C", "MARCH_CM", "MARCH_G", "MARCH_LR", "MARCH_SR",
    "MARCH_SS", "MARCH_U", "MARCH_X", "MARCH_Y", "MATS", "MATS_PLUS",
    "MATS_PLUS_PLUS", "PMOVI",
    "AddressOrder", "RowMajorOrder", "ColumnMajorOrder", "PseudoRandomOrder",
    "AddressComplementOrder", "RowMajorSnakeOrder", "ORDER_REGISTRY", "OrderingError",
    "make_order", "verify_is_permutation",
    "AccessStep", "walk", "count_steps", "element_coordinates", "resolve_direction",
    "row_transition_count",
    "OperationTrace", "TraceElement", "TraceCache", "compile_trace",
    "AddressSequenceChoice", "DegreeOfFreedom", "all_degrees", "complement_data",
    "coverage_equivalence_orders", "paper_choice",
]
