"""Execution walker: expand a March algorithm over an address order.

Both the fault simulator and the power/test session need the same thing: a
stream of primitive accesses (element by element, address by address,
operation by operation), each tagged with enough context for the low-power
pre-charge controller to do its job — in particular which access is the last
one on its row before the traversal moves to a different row (that is where
the paper's one-cycle full restoration goes) and what the next address will
be (that is the column whose pre-charge must be kept on).

Fault campaigns replay the *same* access stream against thousands of
injected faults, so this module also provides :class:`OperationTrace`: the
algorithm/order pair compiled once into per-element coordinate lists, base
step offsets and background values, shared by every replay (and by both
fault-simulation backends, so they cannot drift apart on what a run *is*).
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .algorithm import MarchAlgorithm
from .element import AddressingDirection, MarchElement
from .operations import MarchOperation
from .ordering import AddressOrder


class LazyCoordinates(SequenceABC):
    """A traversal's coordinate list, materialised on first element access.

    Compiling a trace used to walk the address order position by position
    to build the Python ``(row, word)`` list — the single most expensive
    step of a paper-scale vectorized campaign, even though that backend
    only ever consumes the *numpy* coordinate arrays.  This sequence keeps
    the list's interface (length, iteration, indexing, equality against
    plain lists) but defers building the tuples until a scalar consumer —
    the reference backend's replay — actually touches them.  ``len`` never
    materialises.  The descending instance reuses the ascending list
    reversed, preserving the one-expansion-per-direction sharing.
    """

    def __init__(self, order: AddressOrder, ascending: bool = True,
                 source: Optional["LazyCoordinates"] = None) -> None:
        self._order = order
        self._ascending = ascending
        self._source = source
        self._items: Optional[List[Tuple[int, int]]] = None

    def _materialised(self) -> List[Tuple[int, int]]:
        if self._items is None:
            if self._source is not None:
                self._items = self._source._materialised()[::-1]
            else:
                self._items = self._order.sequence(ascending=self._ascending)
        return self._items

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index):
        return self._materialised()[index]

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._materialised())

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyCoordinates):
            return self._materialised() == other._materialised()
        if isinstance(other, list):
            return self._materialised() == other
        return NotImplemented

    def __repr__(self) -> str:
        state = "materialised" if self._items is not None else "lazy"
        direction = "ascending" if self._ascending else "descending"
        return (f"LazyCoordinates({self._order.name!r}, {direction}, "
                f"{len(self)} coordinates, {state})")


@dataclass(frozen=True)
class AccessStep:
    """One primitive access of a March test run."""

    #: global clock-cycle index of this access within the test.
    index: int
    element_index: int
    operation_index: int
    row: int
    word: int
    operation: MarchOperation
    #: concrete traversal direction of the element this access belongs to
    #: (``⇕`` elements are resolved to the walker's ``any_direction``).
    direction: AddressingDirection
    #: coordinates of the next access of the whole test (None for the last).
    next_row: Optional[int]
    next_word: Optional[int]
    #: True when this is the last access performed on this row before the
    #: traversal moves to a different row (or the test ends): the low-power
    #: test mode restores all bit lines during this cycle.
    last_access_on_row: bool
    #: True for the very first access of an element (useful for logging).
    first_of_element: bool
    #: True for the very last access of the whole test.
    last_of_test: bool

    @property
    def is_read(self) -> bool:
        return self.operation.is_read

    @property
    def is_write(self) -> bool:
        return self.operation.is_write


def resolve_direction(element: MarchElement,
                      any_direction: AddressingDirection = AddressingDirection.UP
                      ) -> AddressingDirection:
    """Resolve a ``⇕`` element to a concrete traversal direction (DOF 2)."""
    if element.direction is AddressingDirection.ANY:
        if any_direction is AddressingDirection.ANY:
            raise ValueError("any_direction must be a concrete direction")
        return any_direction
    return element.direction


def element_coordinates(element: MarchElement, order: AddressOrder,
                        any_direction: AddressingDirection = AddressingDirection.UP
                        ) -> Iterator[Tuple[int, int]]:
    """The (row, word) sequence an element visits under ``order``."""
    direction = resolve_direction(element, any_direction)
    if direction is AddressingDirection.UP:
        return order.ascending()
    return order.descending()


def walk(algorithm: MarchAlgorithm, order: AddressOrder,
         any_direction: AddressingDirection = AddressingDirection.UP
         ) -> Iterator[AccessStep]:
    """Yield every primitive access of ``algorithm`` under ``order``.

    The walker materialises one element's coordinate list at a time (the
    full address space), which keeps memory bounded to one list of
    ``word_count`` tuples while still allowing one-step lookahead across
    element boundaries.
    """
    index = 0
    elements = list(algorithm.elements)
    # Pre-compute, for lookahead across element boundaries, the first
    # coordinate of each element.
    first_coordinates: List[Optional[Tuple[int, int]]] = []
    for element in elements:
        coords = element_coordinates(element, order, any_direction)
        first_coordinates.append(next(iter(coords), None))

    for element_index, element in enumerate(elements):
        coordinates = list(element_coordinates(element, order, any_direction))
        operations = element.operations
        direction = resolve_direction(element, any_direction)
        for coord_index, (row, word) in enumerate(coordinates):
            is_last_coord = coord_index == len(coordinates) - 1
            if not is_last_coord:
                following_coord: Optional[Tuple[int, int]] = coordinates[coord_index + 1]
            elif element_index + 1 < len(elements):
                following_coord = first_coordinates[element_index + 1]
            else:
                following_coord = None
            for op_index, operation in enumerate(operations):
                is_last_op_here = op_index == len(operations) - 1
                if not is_last_op_here:
                    next_row, next_word = row, word
                elif following_coord is not None:
                    next_row, next_word = following_coord
                else:
                    next_row, next_word = None, None
                last_of_test = next_row is None
                last_on_row = is_last_op_here and (next_row != row or last_of_test)
                yield AccessStep(
                    index=index,
                    element_index=element_index,
                    operation_index=op_index,
                    row=row,
                    word=word,
                    operation=operation,
                    direction=direction,
                    next_row=next_row,
                    next_word=next_word,
                    last_access_on_row=last_on_row,
                    first_of_element=(coord_index == 0 and op_index == 0),
                    last_of_test=last_of_test,
                )
                index += 1


def count_steps(algorithm: MarchAlgorithm, order: AddressOrder) -> int:
    """Total number of primitive accesses of a run (no walking required)."""
    return algorithm.operation_count * len(order)


# ----------------------------------------------------------------------
# Compiled traces — the reusable form of (algorithm, order, direction)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceElement:
    """One March element of a compiled trace.

    ``coordinates`` is the fully resolved traversal of this element — a
    list shared between elements of the same concrete direction, so a
    six-element algorithm materialises the address space twice (ascending
    and descending), not six times.  ``base_step`` is the global index of
    the element's first primitive access.
    """

    index: int
    direction: AddressingDirection
    operations: Tuple[MarchOperation, ...]
    coordinates: Sequence  # List[Tuple[int, int]] or LazyCoordinates
    base_step: int

    @property
    def operation_count(self) -> int:
        """Operations applied to each address of this element."""
        return len(self.operations)

    @property
    def step_count(self) -> int:
        """Total primitive accesses of this element."""
        return len(self.coordinates) * len(self.operations)


class OperationTrace:
    """A March run compiled once, replayed many times.

    Fault simulation executes the *same* (algorithm, order, direction)
    run for every injected fault; re-deriving the address traversal per
    fault — what :func:`walk` does — dominates campaign runtime.  The
    trace resolves each element's direction, materialises the ascending
    and descending coordinate sequences exactly once, and precomputes the
    per-element base step offsets and background values.  Both the
    reference fault backend (:meth:`iter_accesses`) and the vectorized
    campaign engine (:attr:`elements` plus :meth:`element_backgrounds`)
    consume this single shared description.
    """

    def __init__(self, algorithm: MarchAlgorithm, order: AddressOrder,
                 any_direction: AddressingDirection = AddressingDirection.UP
                 ) -> None:
        self.algorithm = algorithm
        self.order = order
        self.any_direction = any_direction
        ascending: Sequence = LazyCoordinates(order, ascending=True)
        descending: Optional[Sequence] = None
        elements: List[TraceElement] = []
        base = 0
        for index, element in enumerate(algorithm.elements):
            direction = resolve_direction(element, any_direction)
            if direction is AddressingDirection.UP:
                coordinates = ascending
            else:
                if descending is None:
                    descending = LazyCoordinates(order, ascending=False,
                                                 source=ascending)
                coordinates = descending
            compiled = TraceElement(index=index, direction=direction,
                                    operations=element.operations,
                                    coordinates=coordinates, base_step=base)
            elements.append(compiled)
            base += compiled.step_count
        #: compiled elements, in execution order.
        self.elements: Tuple[TraceElement, ...] = tuple(elements)
        #: total primitive accesses of one run.
        self.step_count: int = base
        self._walks: Optional[List[Tuple[AddressingDirection, object, object]]] = None
        self._segment_walk: Optional["SegmentWalk"] = None

    # ------------------------------------------------------------------
    def element_walks(self):
        """Per-element ``(direction, rows, words)`` NumPy coordinate arrays.

        The bulk form of :attr:`elements` the vectorized power campaign
        (:mod:`repro.engine.power_campaign`) replays: the ascending arrays
        come from :meth:`repro.march.ordering.AddressOrder.coordinate_arrays`
        (cached on the order, shared with the vectorized test engine) and the
        descending arrays are reversed views of the same buffers, so a
        six-element algorithm holds one coordinate expansion, not six.
        Materialised lazily and cached on the trace; requires ``numpy``.
        """
        if self._walks is None:
            ascending = self.order.coordinate_arrays()
            descending: Optional[Tuple[object, object]] = None
            walks = []
            for element in self.elements:
                if element.direction is AddressingDirection.DOWN:
                    if descending is None:
                        descending = (ascending[0][::-1], ascending[1][::-1])
                    rows, words = descending
                else:
                    rows, words = ascending
                walks.append((element.direction, rows, words))
            self._walks = walks
        return self._walks

    # ------------------------------------------------------------------
    def segment_walk(self) -> "SegmentWalk":
        """The run's compiled row-segment structure (cached, numpy).

        The flat execution kernel (:mod:`repro.engine.vectorized`) works
        over *segments* — maximal runs of consecutive accesses on one word
        line within one element — instead of individual accesses.  This
        compiles the whole run's segment description once per trace:
        per-segment coordinate/length/base-cycle arrays, the paper's
        end-of-row restoration flags, the carry-over chains that span
        element boundaries staying on one row, and the per-element
        traversal-neighbour certification.  Cached on the trace, so a
        :class:`TraceCache` amortises the compilation exactly once per
        (algorithm, order, direction) — every campaign run and both
        operating modes replay the same structure.  Requires ``numpy``.
        """
        if self._segment_walk is None:
            self._segment_walk = SegmentWalk.compile(self)
        return self._segment_walk

    # ------------------------------------------------------------------
    def iter_accesses(self) -> Iterator[Tuple[int, int, int, MarchOperation]]:
        """Yield ``(step_index, row, word, operation)`` for every access.

        The cheap replay form: plain tuples over the precomputed
        coordinate lists, no per-step object construction, no coordinate
        re-derivation.  One full March C- pass over a 64 x 64 array is
        ~41 k tuples; a campaign replays this generator once per fault.
        """
        index = 0
        for element in self.elements:
            operations = element.operations
            for row, word in element.coordinates:
                for operation in operations:
                    yield index, row, word, operation
                    index += 1

    def element_backgrounds(self) -> List[Optional[int]]:
        """Value every cell holds when each element starts (``None`` = unwritten).

        March elements apply their operations to every address, so between
        elements the whole array is homogeneous: entry ``e`` is the value
        each cell carries when element ``e`` begins — the last written
        value of the most recent writing element, or ``None`` before the
        first write.  The vectorized campaign engine uses this to know an
        aggressor's fault-free value without simulating the aggressor.
        """
        backgrounds: List[Optional[int]] = []
        background: Optional[int] = None
        for element in self.algorithm.elements:
            backgrounds.append(background)
            final = element.final_written_value()
            if final is not None:
                background = final
        return backgrounds

    def describe(self) -> str:
        """One-line summary used in logs and error messages."""
        return (f"{self.algorithm.name} over {self.order.name} "
                f"({self.step_count} accesses)")


def compile_trace(algorithm: MarchAlgorithm, order: AddressOrder,
                  any_direction: AddressingDirection = AddressingDirection.UP
                  ) -> OperationTrace:
    """Compile ``algorithm`` over ``order`` into an :class:`OperationTrace`."""
    return OperationTrace(algorithm, order, any_direction)


class SegmentWalk:
    """Per-segment numpy description of one compiled March run.

    A *segment* is a maximal run of consecutive accesses on one word line
    within one element — the granularity at which the low-power test mode
    makes pre-charge decisions (the end-of-row restoration closes a
    segment whose successor sits on a different row).  All arrays are
    parallel over the ``segment_count`` segments of the whole run, in
    execution order, concatenated across elements:

    ``element``
        index of the owning element.
    ``row`` / ``first_word`` / ``last_word`` / ``length``
        word-line index, first/last visited word and visit count of each
        segment.
    ``start``
        offset of the segment's first visit inside its element's
        coordinate arrays (:meth:`OperationTrace.element_walks`).
    ``base_cycle``
        global clock cycle of the segment's first access.
    ``restore``
        True when the paper's one functional-mode restoration cycle fires
        at the end of this segment (the traversal leaves the row, or the
        test ends).
    ``carry_in``
        True when the segment begins on the row the previous segment
        ended on (only possible across an element boundary), i.e. the
        previous segment did *not* restore and its floating-column state
        carries over.

    ``chains`` lists the half-open segment-index ranges connected by
    carried-over state (each ends with its restoring segment); every
    segment outside a chain starts from the all-attached state and is
    closed-form for the flat kernel.  ``neighbour_ok[e]`` certifies that
    element ``e`` steps through each row strictly by the pre-charged
    traversal-neighbour offset (+1 ascending / -1 descending), the
    support condition of the exact bulk replay.
    """

    def __init__(self, element, row, first_word, last_word, length, start,
                 base_cycle, restore, carry_in, in_chain, chains,
                 element_slices, neighbour_ok, deltas) -> None:
        self.element = element
        self.row = row
        self.first_word = first_word
        self.last_word = last_word
        self.length = length
        self.start = start
        self.base_cycle = base_cycle
        self.restore = restore
        self.carry_in = carry_in
        self.in_chain = in_chain
        self.chains: List[Tuple[int, int]] = chains
        self.element_slices: List[Tuple[int, int]] = element_slices
        self.neighbour_ok: List[bool] = neighbour_ok
        self.deltas: List[int] = deltas

    @property
    def segment_count(self) -> int:
        return int(self.element.size)

    # ------------------------------------------------------------------
    @classmethod
    def compile(cls, trace: OperationTrace) -> "SegmentWalk":
        """Build the segment description of ``trace`` (one numpy pass)."""
        import numpy as np

        # Deferred: core.lowpower imports this module (planner AccessStep).
        from ..core.lowpower import traversal_neighbour_delta

        walks = trace.element_walks()
        per_element = []
        neighbour_ok: List[bool] = []
        deltas: List[int] = []
        for element, (direction, rows, words) in zip(trace.elements, walks):
            delta = traversal_neighbour_delta(direction)
            deltas.append(delta)
            n = int(rows.size)
            same_row = rows[1:] == rows[:-1]
            boundaries = np.flatnonzero(~same_row) + 1
            starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), boundaries))
            ends = np.concatenate((boundaries, np.asarray([n], dtype=np.int64)))
            neighbour_ok.append(bool(np.all(
                words[1:][same_row] == words[:-1][same_row] + delta)))
            per_element.append((
                np.full(starts.size, element.index, dtype=np.int64),
                rows[starts],
                words[starts],
                words[ends - 1],
                ends - starts,
                starts,
                element.base_step + starts * element.operation_count,
            ))

        element_ids = np.concatenate([fields[0] for fields in per_element])
        row = np.concatenate([fields[1] for fields in per_element])
        first_word = np.concatenate([fields[2] for fields in per_element])
        last_word = np.concatenate([fields[3] for fields in per_element])
        length = np.concatenate([fields[4] for fields in per_element])
        start = np.concatenate([fields[5] for fields in per_element])
        base_cycle = np.concatenate([fields[6] for fields in per_element])

        total = int(row.size)
        carry_in = np.zeros(total, dtype=bool)
        restore = np.ones(total, dtype=bool)
        if total > 1:
            carry_in[1:] = row[1:] == row[:-1]
            restore[:-1] = ~carry_in[1:]
        in_chain = carry_in | ~restore
        # A chain starts at a non-restoring segment with no carried state
        # and runs to (including) the first restoring segment after it.
        chains: List[Tuple[int, int]] = []
        restoring = np.flatnonzero(restore)
        for chain_start in np.flatnonzero(~restore & ~carry_in).tolist():
            position = int(np.searchsorted(restoring, chain_start))
            chain_end = int(restoring[position]) if position < restoring.size \
                else total - 1
            chains.append((chain_start, chain_end + 1))

        element_slices: List[Tuple[int, int]] = []
        cursor = 0
        for fields in per_element:
            element_slices.append((cursor, cursor + int(fields[0].size)))
            cursor += int(fields[0].size)

        return cls(element_ids, row, first_word, last_word, length, start,
                   base_cycle, restore, carry_in, in_chain, chains,
                   element_slices, neighbour_ok, deltas)


class TraceCache:
    """Memoises compiled traces per (algorithm, order, direction).

    Keyed by object identity — the cache holds strong references to the
    algorithm and order, so the ids stay valid for the cache's lifetime.
    One cache instance typically lives inside a fault simulator, where the
    same algorithm/order pair is replayed for every injection of a
    campaign and across campaign repetitions.
    """

    def __init__(self) -> None:
        self._traces: Dict[Tuple[int, int, AddressingDirection],
                           Tuple[MarchAlgorithm, AddressOrder, OperationTrace]] = {}

    def get(self, algorithm: MarchAlgorithm, order: AddressOrder,
            any_direction: AddressingDirection = AddressingDirection.UP
            ) -> OperationTrace:
        """Return the compiled trace, building it on first use."""
        key = (id(algorithm), id(order), any_direction)
        entry = self._traces.get(key)
        if entry is None:
            trace = compile_trace(algorithm, order, any_direction)
            self._traces[key] = (algorithm, order, trace)
            return trace
        return entry[2]

    def __len__(self) -> int:
        return len(self._traces)


def row_transition_count(algorithm: MarchAlgorithm, order: AddressOrder,
                         any_direction: AddressingDirection = AddressingDirection.UP
                         ) -> int:
    """How many accesses are flagged ``last_access_on_row`` over a full run.

    For a word-line-sequential order this equals ``#elements * #rows`` (plus
    nothing for the final access, which is also counted); it is the
    frequency driver of the paper's P_B term.

    Counted directly over the coordinate sequences — one flag per row
    change within an element, one per element boundary that lands on a
    different row, one for the final access of the test — without
    materialising :class:`AccessStep` objects, so it stays cheap on
    paper-scale geometries (the same segment arithmetic the vectorized
    backend uses).
    """
    elements = list(algorithm.elements)
    first_rows: List[Optional[int]] = []
    for element in elements:
        first = next(iter(element_coordinates(element, order, any_direction)), None)
        first_rows.append(first[0] if first is not None else None)

    total = 0
    for element_index, element in enumerate(elements):
        rows = [row for row, _ in
                element_coordinates(element, order, any_direction)]
        total += sum(1 for previous, current in zip(rows, rows[1:])
                     if previous != current)
        if element_index + 1 < len(elements):
            next_row = first_rows[element_index + 1]
            if next_row is not None and next_row != rows[-1]:
                total += 1
        else:
            total += 1  # the final access of the test is always flagged
    return total
