"""Degrees of freedom (DOF) of March tests.

March tests are defined up to a number of free choices that do not affect
their fault detection properties for the classical fault models.  The paper
builds on the *first* degree of freedom, which it states as:

    "any arbitrary address sequence can be defined as an ⇑ sequence, as long
    as all addresses occur exactly once (⇓ is the reverse of ⇑)".

This module names the degrees of freedom, provides transformation helpers
that exercise them (used by the fault-coverage invariance experiments), and
offers a convenience that applies the paper's specific choice — the
word-line-after-word-line order — to any algorithm/geometry pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Sequence, Tuple

from ..sram.geometry import ArrayGeometry
from .algorithm import MarchAlgorithm
from .element import AddressingDirection
from .ordering import (
    AddressOrder,
    ColumnMajorOrder,
    PseudoRandomOrder,
    RowMajorOrder,
)


class DegreeOfFreedom(Enum):
    """The degrees of freedom of March tests (after van de Goor / Niggemeyer)."""

    #: DOF 1 — the one the paper exploits: the ⇑ address sequence is an
    #: arbitrary permutation of the address space; ⇓ is its exact reverse.
    ADDRESS_SEQUENCE = 1
    #: DOF 2 — elements marked ⇕ may be run in either direction.
    ANY_DIRECTION_RESOLUTION = 2
    #: DOF 3 — the data background may be complemented throughout
    #: (0 ↔ 1 in every operation).
    DATA_BACKGROUND = 3
    #: DOF 4 — the mapping between logical and physical data (per-column
    #: true/complement scrambling) is free.
    DATA_SCRAMBLING = 4
    #: DOF 5 — the mapping between logical and physical addresses (address
    #: scrambling) is free.
    ADDRESS_SCRAMBLING = 5
    #: DOF 6 — the test may be applied to any sub-range / partition of the
    #: address space independently (e.g. per bank), provided each partition
    #: sees the complete element sequence.
    PARTITIONING = 6

    def summary(self) -> str:
        return _DOF_SUMMARIES[self]


_DOF_SUMMARIES = {
    DegreeOfFreedom.ADDRESS_SEQUENCE:
        "Any permutation of the addresses may serve as the ⇑ sequence; "
        "⇓ is its exact reverse.  Fault coverage of classical March targets "
        "is unchanged.  The paper picks 'word line after word line'.",
    DegreeOfFreedom.ANY_DIRECTION_RESOLUTION:
        "Elements marked ⇕ may be executed in ascending or descending order.",
    DegreeOfFreedom.DATA_BACKGROUND:
        "All data values may be complemented simultaneously (0 ↔ 1).",
    DegreeOfFreedom.DATA_SCRAMBLING:
        "Logical-to-physical data mapping (column true/complement) is free.",
    DegreeOfFreedom.ADDRESS_SCRAMBLING:
        "Logical-to-physical address mapping is free (topological scrambling).",
    DegreeOfFreedom.PARTITIONING:
        "The address space may be partitioned and tested per partition.",
}


@dataclass(frozen=True)
class AddressSequenceChoice:
    """A concrete exercise of DOF 1: an algorithm plus a chosen order."""

    algorithm: MarchAlgorithm
    order: AddressOrder
    any_direction: AddressingDirection = AddressingDirection.UP

    def describe(self) -> str:
        return (f"{self.algorithm.name} with ⇑ := {self.order.name} "
                f"(⇕ resolved {self.any_direction.value})")


def paper_choice(algorithm: MarchAlgorithm,
                 geometry: ArrayGeometry) -> AddressSequenceChoice:
    """The paper's exercise of DOF 1: word-line-after-word-line ascending."""
    return AddressSequenceChoice(algorithm=algorithm,
                                 order=RowMajorOrder(geometry),
                                 any_direction=AddressingDirection.UP)


def coverage_equivalence_orders(geometry: ArrayGeometry,
                                seeds: Sequence[int] = (2006,)) -> List[AddressOrder]:
    """A representative set of DOF-1 choices for coverage-invariance checks.

    Returns the word-line order (the paper's choice), the fast-row order and
    one pseudo-random permutation per seed; the fault simulator verifies
    that detection results agree across all of them.
    """
    orders: List[AddressOrder] = [RowMajorOrder(geometry), ColumnMajorOrder(geometry)]
    orders.extend(PseudoRandomOrder(geometry, seed=seed) for seed in seeds)
    return orders


def complement_data(algorithm: MarchAlgorithm) -> MarchAlgorithm:
    """Exercise DOF 3: complement every data value of the algorithm."""
    return algorithm.with_inverted_data()


def all_degrees() -> List[DegreeOfFreedom]:
    """All March-test degrees of freedom, in the paper's numbering order."""
    return list(DegreeOfFreedom)
