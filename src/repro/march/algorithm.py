"""March algorithms: named sequences of March elements.

The algorithm object carries the statistics the paper's Table 1 reports for
each test (#elements, #operations, #reads, #writes) and the per-address
operation count used by the power model (every March element applies its
operations to every address, so the test length in clock cycles is
``sum(len(element)) * #addresses``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from .element import AddressingDirection, MarchElement
from .operations import MarchOperation, MarchSyntaxError, OperationKind


class MarchValidationError(Exception):
    """Raised when an algorithm is structurally unsound."""


@dataclass(frozen=True)
class MarchAlgorithm:
    """A complete March test."""

    name: str
    elements: Tuple[MarchElement, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.elements:
            raise MarchValidationError(f"March algorithm {self.name!r} has no elements")

    # ------------------------------------------------------------------
    # Table-1 statistics
    # ------------------------------------------------------------------
    @property
    def element_count(self) -> int:
        """The paper's ``# elm`` column."""
        return len(self.elements)

    @property
    def operation_count(self) -> int:
        """The paper's ``# oper`` column: operations applied per address."""
        return sum(element.operation_count for element in self.elements)

    @property
    def read_count(self) -> int:
        """The paper's ``# read`` column: reads applied per address."""
        return sum(element.read_count for element in self.elements)

    @property
    def write_count(self) -> int:
        """The paper's ``# write`` column: writes applied per address."""
        return sum(element.write_count for element in self.elements)

    def cycles_for(self, address_count: int) -> int:
        """Total clock cycles to run the test on ``address_count`` addresses."""
        if address_count <= 0:
            raise MarchValidationError("address_count must be positive")
        return self.operation_count * address_count

    def complexity_string(self) -> str:
        """The usual 'xN' complexity notation (operations per address)."""
        return f"{self.operation_count}N"

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the read expectations are consistent with preceding writes.

        A March test is only meaningful if every read expects the value the
        fault-free memory would contain at that point: the value written by
        the previous operation on the same address (within the element) or
        the value left by the previous element.  The check walks elements
        symbolically, tracking the homogeneous background value.
        """
        background: int | None = None
        for index, element in enumerate(self.elements):
            current = background
            for op_index, op in enumerate(element.operations):
                if op.is_write:
                    current = op.value
                    continue
                if current is None:
                    raise MarchValidationError(
                        f"{self.name}: element {index} ({element}) reads before any "
                        "value has been established"
                    )
                if op.value != current:
                    raise MarchValidationError(
                        f"{self.name}: element {index} ({element}) operation {op_index} "
                        f"expects {op.value} but the fault-free content is {current}"
                    )
            final = element.final_written_value()
            if final is not None:
                background = final
            # an element with only reads leaves the background unchanged
        # A complete validation needs nothing more: direction consistency is
        # free-form (that is exactly DOF 1/2 of March tests).

    def is_valid(self) -> bool:
        try:
            self.validate()
            return True
        except MarchValidationError:
            return False

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_inverted_data(self, name: str | None = None) -> "MarchAlgorithm":
        """The same test run on complemented data (data-background DOF)."""
        return MarchAlgorithm(
            name=name or f"{self.name} (inverted data)",
            elements=tuple(element.inverted_data() for element in self.elements),
            description=self.description,
        )

    def with_all_directions(self, direction: AddressingDirection,
                            name: str | None = None) -> "MarchAlgorithm":
        """Force every element to one direction (used by ablation studies).

        Note that this is *not* coverage-preserving in general — the paper's
        first degree of freedom keeps the ⇑/⇓ relationship intact and only
        changes what "ascending" means.  This helper exists to demonstrate
        that difference in the test-suite and benches.
        """
        return MarchAlgorithm(
            name=name or f"{self.name} (all {direction.value})",
            elements=tuple(element.with_direction(direction) for element in self.elements),
            description=self.description,
        )

    # ------------------------------------------------------------------
    def to_notation(self, ascii_only: bool = False) -> str:
        body = "; ".join(element.to_notation(ascii_only=ascii_only)
                         for element in self.elements)
        return "{" + body + "}"

    def summary_row(self) -> dict:
        """The statistics row the paper's Table 1 lists for this algorithm."""
        return {
            "algorithm": self.name,
            "elements": self.element_count,
            "operations": self.operation_count,
            "reads": self.read_count,
            "writes": self.write_count,
            "notation": self.to_notation(),
        }

    def __str__(self) -> str:
        return f"{self.name} {self.to_notation()}"

    def __iter__(self):
        return iter(self.elements)
