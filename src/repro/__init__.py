"""repro — reproduction of "Minimizing Test Power in SRAM through Reduction
of Pre-charge Activity" (Dilillo, Rosinger, Al-Hashimi, Girard — DATE 2006).

The package is organised as one subpackage per subsystem:

* :mod:`repro.circuit`  — Spice-substitute transient/gate simulation substrate
* :mod:`repro.sram`     — behavioural, cycle-accurate SRAM with pre-charge and RES modelling
* :mod:`repro.power`    — per-event energy model and cycle-accurate accounting
* :mod:`repro.march`    — March test notation, algorithm library, address orders
* :mod:`repro.faults`   — functional fault models and backend-pluggable DOF-1 coverage campaigns
* :mod:`repro.core`     — the paper's contribution: modified pre-charge control,
  low-power test mode planning, analytical PRR model, test sessions
* :mod:`repro.bist`     — a BIST engine that deploys the low-power test mode,
  with backend-pluggable power measurement
* :mod:`repro.analysis` — experiment methodology helpers (scaling, fixtures, tables)
* :mod:`repro.engine`   — NumPy-vectorized batch backends: power measurement,
  fault campaigns and BIST power campaigns
* :mod:`repro.sweep`    — scenario-grid sweep runner (power + coverage +
  measured-vs-analytical PRR) and the ``python -m repro.sweep`` CLI
* :mod:`repro.serve`    — long-running campaign service: JSON/HTTP front,
  content-addressed result cache, request coalescing onto stacked engine
  passes, replayable workload traces (``python -m repro.serve``)
* :mod:`repro.devtools` — AST-based static analysis enforcing the repo's
  lazy-import / thread-safety / durability / provenance / schema
  invariants as a CI gate (``python -m repro.devtools.lint``)

Quickstart::

    from repro import ArrayGeometry, TestSession, MARCH_CM

    geometry = ArrayGeometry(rows=64, columns=64)
    session = TestSession(geometry)
    comparison = session.compare_modes(MARCH_CM)
    print(f"PRR = {comparison.prr:.1%}")

The same measurement at the paper's full 512 x 512 scale runs in seconds on
the vectorized backend::

    from repro import PAPER_GEOMETRY, TestSession, MARCH_CM

    session = TestSession(PAPER_GEOMETRY, backend="vectorized")
    print(f"PRR = {session.compare_modes(MARCH_CM).prr:.1%}")

So does the paper's Section 3 admissibility argument — fault detection
does not depend on the chosen address order — on the vectorized fault
campaign engine::

    from repro import MARCH_CM, PAPER_GEOMETRY, build_fault_list, check_order_invariance
    from repro.march.dof import coverage_equivalence_orders

    faults = build_fault_list(PAPER_GEOMETRY)
    orders = coverage_equivalence_orders(PAPER_GEOMETRY)
    report = check_order_invariance(MARCH_CM, orders, PAPER_GEOMETRY, faults)
    assert report.invariant

And so does the measured Table 1 through the BIST deployment path, on the
vectorized power campaign::

    from repro import BistController, MARCH_CM, PAPER_GEOMETRY

    controller = BistController(PAPER_GEOMETRY, backend="auto")
    result = controller.run(MARCH_CM, low_power=True)
    print(result.describe())
"""

from .circuit import PAPER_TECHNOLOGY, TechnologyParameters, default_technology
from .sram import (
    ArrayGeometry,
    OperatingMode,
    PAPER_GEOMETRY,
    PrechargePlan,
    SMALL_GEOMETRY,
    SRAM,
    checkerboard_background,
    solid_background,
)
from .power import EnergyLedger, PowerModel, PowerSource
from .march import (
    MARCH_CM,
    MARCH_G,
    MARCH_SR,
    MARCH_SS,
    MATS_PLUS,
    MarchAlgorithm,
    PAPER_TABLE1_ALGORITHMS,
    RowMajorOrder,
    get_algorithm,
    parse_march,
)
from .core import (
    AnalyticalPowerModel,
    LowPowerTestPlanner,
    ModeComparison,
    ModifiedPrechargeController,
    TestSession,
    compare_modes,
)
from .bist import BistController, BistOrder, BistResult, POWER_BACKENDS
from .faults import (
    FAULT_BACKENDS,
    FaultInjection,
    FaultSimulator,
    StuckAtFault,
    build_fault_list,
    check_order_invariance,
    run_campaign,
    run_coverage,
)
from .engine import (  # numpy-free: resolved from engine.dispatch
    KERNEL_CHOICES,
    EngineError,
)
from .sweep import (
    CoverageCase,
    PrrCase,
    SweepCase,
    SweepResult,
    SweepRunner,
    coverage_grid,
    prr_grid,
    sweep_grid,
)

__version__ = "1.9.0"

#: Engine classes resolved lazily (PEP 562) so that importing :mod:`repro`
#: (or any scalar subsystem) never loads numpy; the vectorized modules load
#: on first attribute access instead.
_LAZY_ENGINE_EXPORTS = (
    "VectorizedEngine",
    "UnsupportedConfiguration",
    "VectorizedFaultCampaign",
    "UnsupportedFaultCampaign",
    "VectorizedPowerCampaign",
    # kernel-tier helpers (numpy loads on first use, numba/cupy never
    # before a compiled tier is actually requested)
    "KERNELS",
    "default_kernel",
    "available_kernels",
    "active_kernel",
    "resolve_kernel",
)


def __getattr__(name: str):
    """Resolve the vectorized engine exports from :mod:`repro.engine` lazily."""
    if name in _LAZY_ENGINE_EXPORTS:
        from . import engine

        value = getattr(engine, name)
        globals()[name] = value  # cache: subsequent access skips __getattr__
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    """Advertise the lazy engine exports alongside the module globals."""
    return sorted(set(globals()) | set(_LAZY_ENGINE_EXPORTS))

#: The paper this repository reproduces.
PAPER_REFERENCE = (
    "L. Dilillo, P. Rosinger, B. M. Al-Hashimi, P. Girard, "
    "\"Minimizing Test Power in SRAM through Reduction of Pre-charge Activity\", "
    "Design, Automation and Test in Europe (DATE), 2006."
)

__all__ = [
    "PAPER_REFERENCE", "__version__",
    "TechnologyParameters", "PAPER_TECHNOLOGY", "default_technology",
    "ArrayGeometry", "PAPER_GEOMETRY", "SMALL_GEOMETRY", "SRAM",
    "OperatingMode", "PrechargePlan", "solid_background", "checkerboard_background",
    "EnergyLedger", "PowerModel", "PowerSource",
    "MarchAlgorithm", "parse_march", "get_algorithm", "RowMajorOrder",
    "MARCH_CM", "MARCH_SS", "MATS_PLUS", "MARCH_SR", "MARCH_G",
    "PAPER_TABLE1_ALGORITHMS",
    "AnalyticalPowerModel", "LowPowerTestPlanner", "ModifiedPrechargeController",
    "TestSession", "ModeComparison", "compare_modes",
    "BistController", "BistOrder", "BistResult", "POWER_BACKENDS",
    "FaultInjection", "FaultSimulator", "StuckAtFault", "FAULT_BACKENDS",
    "build_fault_list", "check_order_invariance", "run_campaign", "run_coverage",
    "VectorizedEngine", "EngineError", "UnsupportedConfiguration",
    "VectorizedFaultCampaign", "UnsupportedFaultCampaign",
    "VectorizedPowerCampaign",
    "KERNEL_CHOICES", "KERNELS", "default_kernel", "available_kernels",
    "active_kernel", "resolve_kernel",
    "SweepRunner", "SweepCase", "CoverageCase", "PrrCase", "SweepResult",
    "sweep_grid", "coverage_grid", "prr_grid",
]
