"""Distributed campaign orchestration: coordinator, workers, lease ledger.

``repro.distrib`` runs one sweep campaign across N worker processes — or
machines sharing a filesystem — with dynamic work-stealing, so
stragglers and dead workers never dominate wall-clock and never lose
completed measurements:

* :mod:`repro.distrib.ledger` — the durable lease ledger: the campaign
  grid, adaptive chunks as lease documents, O_EXCL claim tokens,
  heartbeats and generation-bumping expiry, all over atomic file
  operations (:mod:`repro.durable`);
* :mod:`repro.distrib.worker` — the worker loop: claim a lease, run it
  as an ordinary :class:`repro.sweep.SweepRunner` on the lease's shared
  fsync'd journal (resume-on-steal makes execution exactly-once),
  heartbeat in the background, steal expired chunks;
* :mod:`repro.distrib.coordinator` — partitioning
  (:func:`plan_leases`), campaign creation, supervision, and the final
  verified merge (:func:`repro.sweep.merge.merge_journals`);
* :mod:`repro.distrib.__main__` — ``python -m repro.distrib``
  (``init`` / ``worker`` / ``run`` / ``status`` / ``merge``).

Quickstart (single machine, 4 workers)::

    python -m repro.distrib run campaign/ --workers 4 --paper-coverage
    # -> campaign/merged.jsonl, verified against campaign/grid.jsonl
"""

from .coordinator import (
    Coordinator,
    grid_digest,
    plan_leases,
    run_distributed,
    spawn_worker,
)
from .ledger import (
    LEDGER_FORMAT,
    LEDGER_VERSION,
    Lease,
    LeaseLedger,
    LeaseRevoked,
    LedgerError,
)
from .worker import DistribWorker, default_worker_id

__all__ = [
    "Coordinator",
    "DistribWorker",
    "LEDGER_FORMAT",
    "LEDGER_VERSION",
    "Lease",
    "LeaseLedger",
    "LeaseRevoked",
    "LedgerError",
    "default_worker_id",
    "grid_digest",
    "plan_leases",
    "run_distributed",
    "spawn_worker",
]
