"""Command line for distributed campaigns: ``python -m repro.distrib``.

Subcommands::

    # Publish a campaign onto a shared directory (grid + leases + manifest):
    python -m repro.distrib init campaign/ --workers 4 \\
        --geometry 64x64 --geometry 128x128 \\
        --algorithm "March C-" --algorithm "MATS+" --order row-major

    # Start a worker (any number of processes/machines, any time):
    python -m repro.distrib worker campaign/ --lease-timeout 30

    # One-shot: init + N local workers + supervise + verified merge:
    python -m repro.distrib run campaign/ --workers 4 --paper-coverage

    # Inspect progress (pending/claimed/done leases, steals, cases):
    python -m repro.distrib status campaign/

    # Merge the lease journals into the verified merged.jsonl:
    python -m repro.distrib merge campaign/ [--allow-incomplete]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..engine.dispatch import KERNEL_CHOICES
from ..march.ordering import ORDER_REGISTRY
from ..sram.geometry import BANK_INTERLEAVE_MODES
from ..sweep.journal import JournalError
from ..sweep.merge import MergeError
from ..sweep.runner import (
    AnyCase,
    DEFAULT_SAMPLE,
    SweepError,
    coverage_grid,
    paper_coverage_cases,
    paper_prr_cases,
    paper_table1_cases,
    prr_grid,
    sweep_grid,
)
from .coordinator import (
    Coordinator,
    DEFAULT_CHUNK_FACTOR,
    DEFAULT_MIN_CHUNK,
    run_distributed,
)
from .ledger import LedgerError
from .worker import DistribWorker


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The campaign-grid axes shared by ``init`` and ``run``."""
    grid = parser.add_argument_group("campaign grid")
    grid.add_argument("--paper-table1", action="store_true",
                      help="preset: the measured Table 1 grid")
    grid.add_argument("--paper-coverage", action="store_true",
                      help="preset: the paper-scale DOF-1 coverage grid")
    grid.add_argument("--paper-prr", action="store_true",
                      help="preset: the measured Table 1 via the BIST path")
    grid.add_argument("--coverage", action="store_true",
                      help="build fault-coverage campaigns instead of "
                           "power sweeps")
    grid.add_argument("--prr-grid", action="store_true",
                      help="build measured-vs-analytical PRR campaigns")
    grid.add_argument("--geometry", action="append", default=[],
                      metavar="RxC", help="array geometry (repeatable)")
    grid.add_argument("--algorithm", action="append", default=[],
                      metavar="NAME", help="march algorithm (repeatable)")
    grid.add_argument("--order", action="append", default=[],
                      choices=sorted(ORDER_REGISTRY),
                      help="address order (repeatable; power grids)")
    grid.add_argument("--backend", default="auto",
                      help="engine backend for every case")
    grid.add_argument("--kernel", choices=KERNEL_CHOICES, default=None,
                      help="flat-kernel tier for power/PRR cases")
    grid.add_argument("--banks", action="append", type=int, default=[],
                      metavar="N", help="bank count axis (repeatable)")
    grid.add_argument("--bank-interleave", default="blocked",
                      choices=sorted(BANK_INTERLEAVE_MODES),
                      help="bank interleave mode")
    grid.add_argument("--seed", type=int, action="append", default=[],
                      metavar="N",
                      help="seed axis (repeatable; each seed replicates "
                           "the grid)")
    grid.add_argument("--sample", type=int, default=DEFAULT_SAMPLE,
                      help="locations sampled per fault class "
                           "(coverage grids)")


def _build_cases(args: argparse.Namespace) -> List[AnyCase]:
    """Assemble the campaign grid from the parsed axes."""
    cases: List[AnyCase] = []
    seeds = args.seed or [0]
    if args.paper_table1:
        cases += paper_table1_cases(kernel=args.kernel)
    if args.paper_coverage:
        cases += paper_coverage_cases()
    if args.paper_prr:
        cases += paper_prr_cases(kernel=args.kernel)
    if args.geometry:
        if not args.algorithm:
            raise SweepError("a custom grid needs at least one --algorithm")
        banks = args.banks or [1]
        if args.coverage:
            for seed in seeds:
                cases += coverage_grid(args.geometry, args.algorithm,
                                       backend=args.backend,
                                       sample=args.sample, seed=seed)
        elif args.prr_grid:
            for seed in seeds:
                cases += prr_grid(args.geometry, args.algorithm,
                                  backend=args.backend, seed=seed,
                                  banks=banks,
                                  bank_interleave=args.bank_interleave,
                                  kernel=args.kernel)
        else:
            cases += sweep_grid(args.geometry, args.algorithm,
                                orders=args.order or ("row-major",),
                                backends=(args.backend,), banks=banks,
                                bank_interleave=args.bank_interleave,
                                kernel=args.kernel)
    if not cases:
        raise SweepError(
            "no campaign cases: pass a preset (--paper-table1 / "
            "--paper-coverage / --paper-prr) and/or --geometry + "
            "--algorithm axes")
    return cases


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distrib",
        description="Distributed work-stealing campaign orchestrator.")
    commands = parser.add_subparsers(dest="command", required=True)

    init = commands.add_parser(
        "init", help="publish a campaign (grid, leases, manifest)")
    init.add_argument("root", help="campaign directory (shared filesystem)")
    init.add_argument("--workers", type=int, default=4,
                      help="worker count the lease sizes are planned for")
    init.add_argument("--min-chunk", type=int, default=DEFAULT_MIN_CHUNK,
                      help="smallest lease size (cases)")
    init.add_argument("--factor", type=int, default=DEFAULT_CHUNK_FACTOR,
                      help="guided self-scheduling divisor")
    _add_grid_arguments(init)

    worker = commands.add_parser(
        "worker", help="run one worker against a published campaign")
    worker.add_argument("root", help="campaign directory")
    worker.add_argument("--worker-id", default=None,
                        help="worker identity (default: host-pid)")
    worker.add_argument("--strategy", default="auto",
                        help="SweepRunner strategy per lease")
    worker.add_argument("--processes", type=int, default=1,
                        help="per-case fan-out inside this worker")
    worker.add_argument("--lease-timeout", type=float, default=None,
                        help="steal chunks silent this long (seconds); "
                             "omit to never steal from this worker")
    worker.add_argument("--heartbeat-interval", type=float, default=None,
                        help="seconds between liveness writes "
                             "(default: lease-timeout/4)")
    worker.add_argument("--poll-interval", type=float, default=0.2,
                        help="seconds between idle ledger scans")

    run = commands.add_parser(
        "run", help="init + N local workers + supervise + verified merge")
    run.add_argument("root", help="campaign directory to create")
    run.add_argument("--workers", type=int, default=4,
                     help="local worker processes to spawn")
    run.add_argument("--min-chunk", type=int, default=DEFAULT_MIN_CHUNK)
    run.add_argument("--factor", type=int, default=DEFAULT_CHUNK_FACTOR)
    run.add_argument("--lease-timeout", type=float, default=30.0,
                     help="steal chunks silent this long (seconds)")
    run.add_argument("--strategy", default="auto",
                     help="SweepRunner strategy per lease")
    run.add_argument("--deadline", type=float, default=None,
                     help="abort supervision after this many seconds")
    _add_grid_arguments(run)

    status = commands.add_parser(
        "status", help="lease/steal/case progress of a campaign")
    status.add_argument("root", help="campaign directory")
    status.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable status on stdout")

    merge = commands.add_parser(
        "merge", help="union lease journals into verified merged.jsonl")
    merge.add_argument("root", help="campaign directory")
    merge.add_argument("--allow-incomplete", action="store_true",
                       help="merge even when grid cases are missing")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code (0 ok, 2 on error)."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "init":
            cases = _build_cases(args)
            Coordinator.create(args.root, cases, args.workers,
                               min_chunk=args.min_chunk,
                               factor=args.factor)
            status = Coordinator(args.root).status()
            print(f"campaign {args.root}: {len(cases)} cases across "
                  f"{status['leases']} leases (planned for "
                  f"{args.workers} workers)")
        elif args.command == "worker":
            worker = DistribWorker(
                args.root, worker_id=args.worker_id,
                strategy=args.strategy, processes=args.processes,
                poll_interval=args.poll_interval,
                heartbeat_interval=args.heartbeat_interval,
                lease_timeout=args.lease_timeout)
            summary = worker.run()
            print(f"worker {summary['worker']}: "
                  f"{summary['executed']} lease(s) executed, "
                  f"{len(summary['revoked'])} revoked")  # type: ignore[arg-type]
        elif args.command == "run":
            cases = _build_cases(args)
            report = run_distributed(
                args.root, cases, args.workers,
                lease_timeout=args.lease_timeout,
                strategy=args.strategy,
                min_chunk=args.min_chunk, factor=args.factor,
                supervise_deadline=args.deadline)
            print(report.summary())
        elif args.command == "status":
            status = Coordinator(args.root).status()
            if args.as_json:
                print(json.dumps(status, sort_keys=True))
            else:
                print(f"leases: {status['done']}/{status['leases']} done "
                      f"({status['claimed']} claimed, "
                      f"{status['pending']} pending), "
                      f"{status['steals']} steal(s), "
                      f"{status['cases_done']} case(s) complete")
        elif args.command == "merge":
            report = Coordinator(args.root).merge(
                require_complete=not args.allow_incomplete)
            print(report.summary())
    except (LedgerError, MergeError, SweepError, JournalError,
            OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
