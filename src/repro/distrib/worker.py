"""Distributed campaign worker: claim, execute, heartbeat, steal.

A :class:`DistribWorker` is an ordinary :class:`repro.sweep.SweepRunner`
wrapped in the lease protocol.  Its loop:

1. **claim** — scan the ledger for a pending lease and race for its
   claim token; on a win, start heartbeating and execute the chunk;
2. **execute** — build a ``SweepRunner`` over the lease's cases with the
   lease's shared journal; *always* resume if the journal holds entries
   (a stolen lease's new holder restores the dead worker's completed
   cases verbatim and executes only the remainder — this is the
   exactly-once mechanism); the journal header is stamped with the lease
   identity and the chunk's campaign-global ``case_indices`` so the
   merge step can rebase shard-local indices;
3. **heartbeat** — a background thread refreshes the lease's liveness
   proof; if it discovers the lease was re-leased out from under us
   (our heartbeats were too slow, a supervisor declared us dead), it
   trips the revoked flag and the runner's ``case_sink`` aborts the run
   before the next case — everything completed so far is already
   durable in the shared journal, so nothing is lost and nothing will
   re-execute;
4. **steal** — when no lease is pending but the campaign is unfinished,
   the worker (if configured with a ``lease_timeout``) calls
   ``release_expired`` itself: stealing is decentralised, any survivor
   can recover a dead peer's chunk without a coordinator in the loop.

The worker exits when every lease is done.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..sweep.runner import (
    AnyCase,
    AnyRecord,
    SweepRunner,
    case_from_dict,
)
from .ledger import Lease, LeaseLedger, LeaseRevoked

__all__ = ["DistribWorker", "default_worker_id"]

DEFAULT_POLL_INTERVAL = 0.2


def default_worker_id() -> str:
    """A worker identity unique across hosts sharing the filesystem."""
    return f"{socket.gethostname()}-{os.getpid()}"


class DistribWorker:
    """One worker process of a distributed campaign.

    ``lease_timeout`` enables decentralised stealing: when the worker
    finds no pending lease, it re-leases chunks whose holders have been
    silent that long.  ``None`` disables stealing from this worker
    (useful when only a supervising coordinator should declare death).
    """

    def __init__(self, root: Union[str, Path],
                 worker_id: Optional[str] = None,
                 strategy: str = "auto",
                 processes: int = 1,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 heartbeat_interval: Optional[float] = None,
                 lease_timeout: Optional[float] = None) -> None:
        self.ledger = LeaseLedger(root)
        self.worker_id = worker_id or default_worker_id()
        self.strategy = strategy
        self.processes = processes
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.lease_timeout = lease_timeout
        #: lease ids this worker completed (including resumed steals)
        self.completed: List[str] = []
        #: lease ids revoked out from under this worker mid-run
        self.revoked: List[str] = []
        self._cases: Optional[List[AnyCase]] = None

    # ------------------------------------------------------------------
    def _campaign_cases(self) -> List[AnyCase]:
        """The full campaign grid, rebuilt once from ``grid.jsonl``."""
        if self._cases is None:
            self._cases = [case_from_dict(fingerprint)
                           for fingerprint in self.ledger.load_grid()]
        return self._cases

    def _resolved_heartbeat_interval(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        if self.lease_timeout is not None:
            # Several beats per timeout window, so one delayed write
            # does not get a live worker declared dead.
            return max(0.05, self.lease_timeout / 4)
        return 1.0

    # ------------------------------------------------------------------
    def _execute_lease(self, lease: Lease) -> None:
        """Run one claimed lease to completion (or revocation)."""
        cases = self._campaign_cases()
        lease_cases = [cases[index] for index in lease.case_indices]
        journal_path = self.ledger.journal_path(lease.lease_id)
        runner = SweepRunner(
            lease_cases,
            processes=self.processes,
            journal=journal_path,
            strategy=self.strategy,
            header_meta={
                "lease_id": lease.lease_id,
                "case_indices": list(lease.case_indices),
                "worker": self.worker_id,
                "generation": lease.generation,
                "campaign_root": str(self.ledger.root),
            })
        # Resume whenever the journal holds completed cases: generation 1
        # writes a fresh journal, every later generation (a steal) picks
        # up exactly where the dead worker's fsync'd journal ends.
        resume = journal_path.exists() and journal_path.stat().st_size > 0

        revoked = threading.Event()
        stop = threading.Event()

        def beat() -> None:
            interval = self._resolved_heartbeat_interval()
            while not stop.wait(interval):
                try:
                    self.ledger.heartbeat(lease)
                except LeaseRevoked:
                    revoked.set()
                    return
                except Exception:  # pragma: no cover - transient fs error
                    continue  # missing a beat is recoverable; keep trying

        def case_sink(index: int, record: AnyRecord) -> None:
            if revoked.is_set():
                raise LeaseRevoked(
                    f"lease {lease.lease_id} generation "
                    f"{lease.generation} was stolen; aborting (completed "
                    "cases are safe in the shared journal)")

        heartbeat_thread = threading.Thread(
            target=beat, name=f"heartbeat-{lease.lease_id}", daemon=True)
        heartbeat_thread.start()
        try:
            runner.run(resume=resume, case_sink=case_sink)
        except LeaseRevoked:
            self.revoked.append(lease.lease_id)
            return
        finally:
            stop.set()
            heartbeat_thread.join(timeout=5)
        self.ledger.complete(lease)
        self.completed.append(lease.lease_id)

    # ------------------------------------------------------------------
    def run_once(self) -> bool:
        """Claim and execute at most one lease; True when one was run."""
        for lease_summary in self.ledger.leases():
            if lease_summary.state != "pending":
                continue
            lease = self.ledger.claim(lease_summary.lease_id,
                                      self.worker_id)
            if lease is None:
                continue  # lost the race; try the next pending lease
            self._execute_lease(lease)
            return True
        return False

    def run(self, max_leases: Optional[int] = None) -> Dict[str, object]:
        """Work until the campaign completes; returns a final summary.

        Between leases the worker polls; when nothing is pending but the
        campaign is incomplete it tries to steal (given a
        ``lease_timeout``), else sleeps ``poll_interval`` and re-scans —
        some other worker's chunk may yet expire.
        """
        executed = 0
        while True:
            status = self.ledger.status()
            if status["complete"]:
                break
            if max_leases is not None and executed >= max_leases:
                break
            if self.run_once():
                executed += 1
                continue
            if self.lease_timeout is not None:
                if self.ledger.release_expired(self.lease_timeout):
                    continue  # a chunk came back; race for it now
            time.sleep(self.poll_interval)
        return {
            "worker": self.worker_id,
            "executed": executed,
            "completed": list(self.completed),
            "revoked": list(self.revoked),
        }
