"""Campaign coordinator: partition, supervise, merge.

The coordinator side of :mod:`repro.distrib` owns the campaign's
lifecycle, not its execution:

* :func:`plan_leases` partitions the grid into adaptively-sized chunks
  (guided self-scheduling: early leases are large to amortise claim
  traffic, tail leases shrink toward ``min_chunk`` so a straggler never
  holds a big slice hostage near the end);
* :meth:`Coordinator.create` publishes the campaign — grid file, lease
  documents, manifest — onto the shared filesystem;
* :meth:`Coordinator.supervise` is the liveness loop: it periodically
  re-leases chunks whose holders went silent (the work-stealing half the
  workers cannot do for themselves when *every* worker on a chunk died);
* :meth:`Coordinator.merge` unions the per-lease journals into the
  single verified ``merged.jsonl`` artifact via
  :func:`repro.sweep.merge.merge_journals`, fingerprint-checked against
  the campaign grid.

Workers are plain processes running ``python -m repro.distrib worker``
(:func:`spawn_worker`); :func:`run_distributed` wires the whole thing —
create, spawn N, supervise, merge — for tests, benchmarks and the
``run`` subcommand.
"""

from __future__ import annotations

import hashlib
import math
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..sweep.merge import MergeReport, merge_journals
from ..sweep.runner import AnyCase, case_fingerprint, fingerprint_digest
from .ledger import LeaseLedger, LedgerError

__all__ = [
    "Coordinator",
    "grid_digest",
    "plan_leases",
    "run_distributed",
    "spawn_worker",
]

#: Guided self-scheduling divisor: each planning round leases
#: ``remaining / (factor * workers)`` cases, so chunk sizes decay
#: geometrically toward the tail.
DEFAULT_CHUNK_FACTOR = 2
DEFAULT_MIN_CHUNK = 1


def plan_leases(n_cases: int, workers: int,
                min_chunk: int = DEFAULT_MIN_CHUNK,
                factor: int = DEFAULT_CHUNK_FACTOR) -> List[List[int]]:
    """Partition ``range(n_cases)`` into adaptive contiguous chunks.

    Guided self-scheduling: chunk ``k`` takes
    ``max(min_chunk, ceil(remaining / (factor * workers)))`` cases.
    Early chunks are big (few claim round-trips while everyone is busy),
    late chunks approach ``min_chunk`` (a straggler near the end holds
    only a sliver, and a stolen tail chunk re-runs cheaply).  The chunks
    are disjoint, exhaustive and contiguous in grid order — contiguity
    keeps each lease's geometry population dense, which is what the
    batched engine's per-geometry stacking wants.
    """
    if n_cases < 1:
        raise LedgerError(f"a campaign needs at least one case, "
                          f"got {n_cases}")
    if workers < 1:
        raise LedgerError(f"workers must be >= 1, got {workers}")
    if min_chunk < 1:
        raise LedgerError(f"min_chunk must be >= 1, got {min_chunk}")
    if factor < 1:
        raise LedgerError(f"factor must be >= 1, got {factor}")
    chunks: List[List[int]] = []
    start = 0
    while start < n_cases:
        remaining = n_cases - start
        size = max(min_chunk, math.ceil(remaining / (factor * workers)))
        size = min(size, remaining)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def grid_digest(fingerprints: Sequence[Dict[str, object]]) -> str:
    """One digest naming the whole campaign grid (order-sensitive).

    The digest of the concatenated per-case digests: workers and the
    merge step can verify they are looking at the same grid without
    shipping the grid itself.
    """
    rollup = hashlib.sha256()
    for fingerprint in fingerprints:
        rollup.update(fingerprint_digest(fingerprint).encode("ascii"))
    return rollup.hexdigest()


class Coordinator:
    """Creates, supervises and merges one distributed campaign."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.ledger = LeaseLedger(root)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: Union[str, Path], cases: Sequence[AnyCase],
               workers: int, min_chunk: int = DEFAULT_MIN_CHUNK,
               factor: int = DEFAULT_CHUNK_FACTOR,
               meta: Optional[Dict[str, object]] = None) -> "Coordinator":
        """Publish a new campaign over ``cases`` sized for ``workers``."""
        fingerprints = [case_fingerprint(case) for case in cases]
        chunks = plan_leases(len(fingerprints), workers,
                             min_chunk=min_chunk, factor=factor)
        coordinator = cls(root)
        campaign_meta: Dict[str, object] = {"planned_workers": workers,
                                            "min_chunk": min_chunk,
                                            "factor": factor}
        campaign_meta.update(meta or {})
        coordinator.ledger.initialise(fingerprints, chunks,
                                      grid_digest(fingerprints),
                                      meta=campaign_meta)
        return coordinator

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        return self.ledger.status()

    def supervise(self, lease_timeout: float,
                  poll_interval: Optional[float] = None,
                  deadline: Optional[float] = None) -> Dict[str, object]:
        """Re-lease dead workers' chunks until the campaign completes.

        Polls the ledger every ``poll_interval`` seconds (default: a
        quarter of the lease timeout), calling
        :meth:`LeaseLedger.release_expired` each round so chunks whose
        holders went silent return to the pending pool for surviving
        workers to steal.  Returns the final :meth:`status` when every
        lease is done; raises :class:`LedgerError` if ``deadline``
        seconds pass first (a campaign with no live workers would
        otherwise supervise forever).
        """
        interval = poll_interval if poll_interval is not None \
            else max(0.05, lease_timeout / 4)
        started = time.monotonic()
        while True:
            status = self.ledger.status()
            if status["complete"]:
                return status
            self.ledger.release_expired(lease_timeout)
            if deadline is not None \
                    and time.monotonic() - started > deadline:
                raise LedgerError(
                    f"campaign did not complete within {deadline}s "
                    f"(status: {status})")
            time.sleep(interval)

    # ------------------------------------------------------------------
    def merge(self, require_complete: bool = True) -> MergeReport:
        """Union every lease journal into the verified merged artifact."""
        grid = self.ledger.load_grid()
        journals = sorted(self.ledger.journal_dir.glob("*.jsonl"))
        if not journals:
            raise LedgerError(
                f"no lease journals under {self.ledger.journal_dir}; "
                "has any worker run?")
        return merge_journals(self.ledger.merged_path, journals,
                              grid=grid, require_complete=require_complete)


def spawn_worker(root: Union[str, Path],
                 worker_id: Optional[str] = None,
                 strategy: str = "auto",
                 processes: int = 1,
                 lease_timeout: Optional[float] = None,
                 heartbeat_interval: Optional[float] = None,
                 extra_args: Sequence[str] = ()) -> subprocess.Popen:
    """Start one ``python -m repro.distrib worker`` child process."""
    command = [sys.executable, "-m", "repro.distrib", "worker",
               str(root), "--strategy", strategy,
               "--processes", str(processes)]
    if worker_id is not None:
        command += ["--worker-id", worker_id]
    if lease_timeout is not None:
        command += ["--lease-timeout", str(lease_timeout)]
    if heartbeat_interval is not None:
        command += ["--heartbeat-interval", str(heartbeat_interval)]
    command += list(extra_args)
    return subprocess.Popen(command)


def run_distributed(root: Union[str, Path], cases: Sequence[AnyCase],
                    workers: int,
                    lease_timeout: float = 30.0,
                    strategy: str = "auto",
                    min_chunk: int = DEFAULT_MIN_CHUNK,
                    factor: int = DEFAULT_CHUNK_FACTOR,
                    supervise_deadline: Optional[float] = None
                    ) -> MergeReport:
    """Create, fan out, supervise and merge one campaign end to end.

    Spawns ``workers`` child processes, supervises until every lease is
    done (stealing from any child that dies), merges, and reaps the
    children.  The convenience wrapper behind ``python -m repro.distrib
    run``, the benchmark and the integration tests.
    """
    coordinator = Coordinator.create(root, cases, workers,
                                     min_chunk=min_chunk, factor=factor)
    children = [spawn_worker(root, worker_id=f"worker-{number}",
                             strategy=strategy,
                             lease_timeout=lease_timeout)
                for number in range(workers)]
    try:
        coordinator.supervise(lease_timeout, deadline=supervise_deadline)
    finally:
        for child in children:
            if child.poll() is None:
                child.terminate()
        for child in children:
            try:
                child.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety
                child.kill()
                child.wait()
    return coordinator.merge(require_complete=True)
