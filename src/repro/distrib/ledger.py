"""Durable work-stealing lease ledger over a shared filesystem.

The ledger is the coordination substrate of :mod:`repro.distrib`: one
directory tree that any number of worker processes (or machines mounting
the same filesystem) read and write with nothing but atomic file
operations — no server, no sockets, no locks held across crashes.  Every
scheduling decision is a file, so a finished (or half-finished, or
crashed) campaign can be reconstructed from the directory alone::

    <root>/manifest.json        campaign manifest (grid digest, lease map)
    <root>/grid.jsonl           one case fingerprint per line, grid order
    <root>/leases/<id>.json     lease state: pending / claimed / done
    <root>/leases/<id>.gen<g>.claim   O_EXCL claim token of generation g
    <root>/leases/<id>.heartbeat.json latest liveness proof of the holder
    <root>/journals/<id>.jsonl  the lease's fsync'd sweep journal
    <root>/merged.jsonl         the verified merged record set

Safety argument, in brief:

* **claiming** — a lease of generation *g* is won by the worker that
  creates ``<id>.gen<g>.claim`` with ``O_CREAT | O_EXCL``; the
  filesystem arbitrates races, exactly one creator succeeds;
* **stealing** — a claimed lease whose heartbeat goes stale past the
  timeout is *re-leased*: its generation is bumped (a new token name, so
  the old claim cannot win again) and its state returns to pending, with
  the eviction recorded in the lease's ``steals`` history;
* **no double execution** — generations arbitrate *writers of state*,
  not results: every generation of a lease appends to the **same** sweep
  journal, and a re-leased worker resumes that journal
  (:class:`repro.sweep.SweepRunner` restores completed cases verbatim
  and executes only the missing ones), so a case measured by a killed
  worker is never measured again;
* **durability** — every state transition is an atomic replace
  (:func:`repro.durable.atomic_write_text`): a reader sees the previous
  lease document or the next one, never a torn hybrid.

Lease documents carry the ledger ``format``/``version`` tags and every
loader validates both (lint rule RPR007): silently resuming a campaign
written by an incompatible ledger is how grids get corrupted.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..durable import atomic_write_text, fsync_directory

__all__ = [
    "LEDGER_FORMAT",
    "LEDGER_VERSION",
    "Lease",
    "LeaseLedger",
    "LedgerError",
    "LeaseRevoked",
]

#: The ``format`` tag every ledger document (manifest, lease, heartbeat)
#: carries.
LEDGER_FORMAT = "repro-distrib-ledger"
#: The ledger schema version this module writes; loaders reject any
#: other (RPR007: format and version are validated together).
LEDGER_VERSION = 1

#: Lease lifecycle states.
LEASE_STATES = ("pending", "claimed", "done")


class LedgerError(Exception):
    """Raised on malformed, foreign or inconsistent ledger state."""


class LeaseRevoked(LedgerError):
    """The caller's lease generation was superseded (its chunk stolen)."""


def _load_document(path: Path, role: str) -> Dict[str, object]:
    """Read and validate one ledger JSON document.

    Every loader goes through here: the ``format`` tag, the schema
    ``version`` and the document ``role`` are all checked, so a foreign
    file — or a ledger written by a future incompatible version — fails
    loudly instead of quietly resuming the wrong campaign.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LedgerError(f"cannot read ledger document {path}: {exc}") \
            from exc
    except json.JSONDecodeError as exc:
        raise LedgerError(
            f"ledger document {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("format") != LEDGER_FORMAT:
        raise LedgerError(
            f"{path} is not a {LEDGER_FORMAT} document; is this a "
            "repro.distrib campaign directory?")
    if payload.get("version") != LEDGER_VERSION:
        raise LedgerError(
            f"{path} has ledger version {payload.get('version')!r}; this "
            f"reader understands version {LEDGER_VERSION}")
    if payload.get("role") != role:
        raise LedgerError(
            f"{path} is a {payload.get('role')!r} document, expected "
            f"{role!r}")
    return payload


@dataclass
class Lease:
    """One chunk of the campaign grid and its scheduling state.

    ``case_indices`` are positions in the campaign grid (``grid.jsonl``
    line numbers); ``generation`` counts how many times the chunk has
    been leased (1 on creation, +1 per steal); ``steals`` is the audit
    trail of evictions — who lost the lease, when, and at which
    generation.
    """

    lease_id: str
    case_indices: List[int]
    state: str = "pending"
    generation: int = 1
    worker: Optional[str] = None
    claimed_unix: Optional[float] = None
    completed_unix: Optional[float] = None
    steals: List[Dict[str, object]] = field(default_factory=list)

    def to_payload(self) -> Dict[str, object]:
        """The lease as a ledger JSON document."""
        return {
            "format": LEDGER_FORMAT,
            "version": LEDGER_VERSION,
            "role": "lease",
            "lease_id": self.lease_id,
            "case_indices": list(self.case_indices),
            "state": self.state,
            "generation": self.generation,
            "worker": self.worker,
            "claimed_unix": self.claimed_unix,
            "completed_unix": self.completed_unix,
            "steals": list(self.steals),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object],
                     path: Path) -> "Lease":
        """Rebuild a lease from its (already format-checked) document."""
        try:
            lease = cls(
                lease_id=str(payload["lease_id"]),
                case_indices=[int(index) for index
                              in payload["case_indices"]],  # type: ignore[union-attr]
                state=str(payload["state"]),
                generation=int(payload["generation"]),  # type: ignore[arg-type]
                worker=payload.get("worker"),  # type: ignore[arg-type]
                claimed_unix=payload.get("claimed_unix"),  # type: ignore[arg-type]
                completed_unix=payload.get("completed_unix"),  # type: ignore[arg-type]
                steals=list(payload.get("steals") or []),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LedgerError(
                f"lease document {path} is missing fields: {exc}") from exc
        if lease.state not in LEASE_STATES:
            raise LedgerError(
                f"lease document {path} has unknown state "
                f"{lease.state!r}; expected one of {LEASE_STATES}")
        return lease


class LeaseLedger:
    """Filesystem lease ledger of one distributed campaign.

    All methods are safe to call concurrently from any number of
    processes sharing the directory; mutating methods either win their
    race (O_EXCL claim tokens) or publish atomically (temp file +
    ``os.replace`` via :mod:`repro.durable`).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def grid_path(self) -> Path:
        return self.root / "grid.jsonl"

    @property
    def lease_dir(self) -> Path:
        return self.root / "leases"

    @property
    def journal_dir(self) -> Path:
        return self.root / "journals"

    @property
    def merged_path(self) -> Path:
        return self.root / "merged.jsonl"

    def lease_path(self, lease_id: str) -> Path:
        return self.lease_dir / f"{lease_id}.json"

    def heartbeat_path(self, lease_id: str) -> Path:
        return self.lease_dir / f"{lease_id}.heartbeat.json"

    def claim_token_path(self, lease_id: str, generation: int) -> Path:
        return self.lease_dir / f"{lease_id}.gen{generation}.claim"

    def journal_path(self, lease_id: str) -> Path:
        """The lease's sweep journal — shared by every generation, which
        is what makes a steal resume instead of re-execute."""
        return self.journal_dir / f"{lease_id}.jsonl"

    # ------------------------------------------------------------------
    # Campaign creation (coordinator side)
    # ------------------------------------------------------------------
    def initialise(self, fingerprints: Sequence[Dict[str, object]],
                   chunks: Sequence[Sequence[int]],
                   grid_digest: str,
                   meta: Optional[Dict[str, object]] = None) -> None:
        """Create the campaign layout: grid, lease files, manifest last.

        The manifest is written *after* every lease file, so a manifest
        that exists names a fully-initialised campaign — workers poll
        for it and never observe a half-built ledger.  Re-initialising
        an existing campaign is an error (wipe the directory to rebuild).
        """
        if self.manifest_path.exists():
            raise LedgerError(
                f"campaign {self.root} is already initialised; remove the "
                "directory to build a new one")
        covered = sorted(index for chunk in chunks for index in chunk)
        if covered != list(range(len(fingerprints))):
            raise LedgerError(
                "lease chunks must partition the grid exactly: expected "
                f"indices 0..{len(fingerprints) - 1}, got "
                f"{len(covered)} indices")
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        grid_lines = [json.dumps(fingerprint, sort_keys=True,
                                 separators=(",", ":"))
                      for fingerprint in fingerprints]
        atomic_write_text(self.grid_path, "\n".join(grid_lines) + "\n")
        lease_ids: List[str] = []
        width = max(4, len(str(len(chunks))))
        for number, chunk in enumerate(chunks):
            lease_id = f"lease-{number:0{width}d}"
            lease_ids.append(lease_id)
            lease = Lease(lease_id=lease_id,
                          case_indices=[int(index) for index in chunk])
            atomic_write_text(self.lease_path(lease_id),
                              json.dumps(lease.to_payload(), sort_keys=True))
        manifest: Dict[str, object] = {
            "format": LEDGER_FORMAT,
            "version": LEDGER_VERSION,
            "role": "manifest",
            "cases": len(fingerprints),
            "grid_digest": grid_digest,
            "lease_ids": lease_ids,
            "created_unix": round(time.time(), 3),
            "meta": dict(meta or {}),
        }
        atomic_write_text(self.manifest_path,
                          json.dumps(manifest, sort_keys=True, indent=2))

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_manifest(self) -> Dict[str, object]:
        """The campaign manifest (format/version/role validated)."""
        if not self.manifest_path.exists():
            raise LedgerError(
                f"no campaign manifest at {self.manifest_path}; "
                "initialise the campaign first")
        return _load_document(self.manifest_path, "manifest")

    def load_grid(self) -> List[Dict[str, object]]:
        """Every case fingerprint of the campaign grid, in grid order."""
        try:
            text = self.grid_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LedgerError(f"cannot read grid {self.grid_path}: {exc}") \
                from exc
        fingerprints: List[Dict[str, object]] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                fingerprint = json.loads(line)
            except json.JSONDecodeError as exc:
                raise LedgerError(
                    f"grid line {lineno} is not valid JSON: {exc}") from exc
            if not isinstance(fingerprint, dict):
                raise LedgerError(
                    f"grid line {lineno} is not a case fingerprint object")
            fingerprints.append(fingerprint)
        return fingerprints

    def lease_ids(self) -> List[str]:
        """Every lease id of the campaign, in manifest order."""
        manifest = self.load_manifest()
        ids = manifest.get("lease_ids")
        if not isinstance(ids, list):
            raise LedgerError(
                f"manifest {self.manifest_path} has no lease_ids list")
        return [str(lease_id) for lease_id in ids]

    def read_lease(self, lease_id: str) -> Lease:
        """The current state of one lease (format/version validated)."""
        path = self.lease_path(lease_id)
        payload = _load_document(path, "lease")
        return Lease.from_payload(payload, path)

    def leases(self) -> List[Lease]:
        """Every lease of the campaign, in manifest order."""
        return [self.read_lease(lease_id) for lease_id in self.lease_ids()]

    # ------------------------------------------------------------------
    # Worker-side transitions
    # ------------------------------------------------------------------
    def _write_lease(self, lease: Lease) -> None:
        atomic_write_text(self.lease_path(lease.lease_id),
                          json.dumps(lease.to_payload(), sort_keys=True))

    def claim(self, lease_id: str, worker: str) -> Optional[Lease]:
        """Try to claim a pending lease; ``None`` when the race is lost.

        The O_EXCL creation of the generation's claim token is the
        arbitration point: whichever process creates it owns the lease,
        every other contender gets ``FileExistsError`` and backs off.
        The lease document update that follows is cosmetic bookkeeping —
        even if the winner dies before writing it, the token alone
        prevents double claiming, and :meth:`release_expired` eventually
        re-leases the chunk under a fresh generation.
        """
        lease = self.read_lease(lease_id)
        if lease.state != "pending":
            return None
        token = self.claim_token_path(lease_id, lease.generation)
        try:
            fd = os.open(str(token), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None  # another worker won this generation
        try:
            os.write(fd, worker.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        fsync_directory(self.lease_dir)
        now = time.time()
        lease.state = "claimed"
        lease.worker = worker
        lease.claimed_unix = now
        self._write_lease(lease)
        self.heartbeat(lease)
        return lease

    def heartbeat(self, lease: Lease) -> None:
        """Refresh the holder's liveness proof for ``lease``.

        Raises :class:`LeaseRevoked` when the lease has been re-leased
        under a newer generation — the caller lost the chunk and must
        stop working on it (its completed cases are already safe in the
        shared journal).
        """
        current = self.read_lease(lease.lease_id)
        if current.generation != lease.generation:
            raise LeaseRevoked(
                f"lease {lease.lease_id} generation {lease.generation} was "
                f"superseded by generation {current.generation} "
                f"(worker {current.worker!r})")
        atomic_write_text(self.heartbeat_path(lease.lease_id), json.dumps({
            "format": LEDGER_FORMAT,
            "version": LEDGER_VERSION,
            "role": "heartbeat",
            "lease_id": lease.lease_id,
            "generation": lease.generation,
            "worker": lease.worker,
            "time_unix": round(time.time(), 3),
        }, sort_keys=True))

    def complete(self, lease: Lease) -> None:
        """Mark ``lease`` done (idempotent across racing generations).

        Completion is legitimate even when the caller's generation was
        superseded mid-run: every completed case is in the shared
        journal either way, and the thief's resume restores rather than
        re-executes.  The done state simply stops further claiming.
        """
        current = self.read_lease(lease.lease_id)
        if current.state == "done":
            return
        current.state = "done"
        current.worker = lease.worker
        current.completed_unix = round(time.time(), 3)
        self._write_lease(current)

    # ------------------------------------------------------------------
    # Expiry / stealing
    # ------------------------------------------------------------------
    def _last_seen(self, lease: Lease) -> Optional[float]:
        """The holder's most recent liveness timestamp, or ``None``.

        Prefers the heartbeat file (validated and generation-matched);
        falls back to the lease's claim time when no heartbeat landed
        yet.  A corrupt heartbeat file reads as "no heartbeat" — expiry
        must make progress past torn writes, not crash on them.
        """
        path = self.heartbeat_path(lease.lease_id)
        try:
            payload = _load_document(path, "heartbeat")
        except LedgerError:
            payload = None
        if payload is not None \
                and payload.get("generation") == lease.generation:
            stamp = payload.get("time_unix")
            if isinstance(stamp, (int, float)):
                return float(stamp)
        return lease.claimed_unix

    def release_expired(self, timeout: float,
                        now: Optional[float] = None) -> List[str]:
        """Re-lease every chunk whose holder went silent past ``timeout``.

        Covers both failure shapes: a *claimed* lease with a stale (or
        never-written) heartbeat, and a *pending* lease whose current
        claim token exists but whose claimer died before publishing the
        claimed state.  Each re-lease bumps the generation — the next
        claim targets a fresh token name the dead worker can never hold
        — and appends to the lease's ``steals`` audit trail.  Returns
        the ids of the re-leased chunks.
        """
        if timeout <= 0:
            raise LedgerError(f"lease timeout must be > 0, got {timeout}")
        moment = time.time() if now is None else now
        released: List[str] = []
        for lease in self.leases():
            if lease.state == "done":
                continue
            if lease.state == "claimed":
                last_seen = self._last_seen(lease)
                if last_seen is not None and moment - last_seen < timeout:
                    continue
                reason = "heartbeat expired"
            else:  # pending: recover a claim that died before publishing
                token = self.claim_token_path(lease.lease_id,
                                              lease.generation)
                try:
                    token_age = moment - token.stat().st_mtime
                except OSError:
                    continue  # no token: genuinely unclaimed, nothing to do
                if token_age < timeout:
                    continue
                reason = "claim token orphaned"
            lease.steals.append({
                "generation": lease.generation,
                "worker": lease.worker,
                "reason": reason,
                "time_unix": round(moment, 3),
            })
            lease.generation += 1
            lease.state = "pending"
            lease.worker = None
            lease.claimed_unix = None
            self._write_lease(lease)
            released.append(lease.lease_id)
        return released

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Counts per lease state plus steal and case totals."""
        counts = {state: 0 for state in LEASE_STATES}
        cases_done = 0
        steals = 0
        for lease in self.leases():
            counts[lease.state] += 1
            steals += len(lease.steals)
            if lease.state == "done":
                cases_done += len(lease.case_indices)
        total = sum(counts.values())
        return {
            "leases": total,
            "pending": counts["pending"],
            "claimed": counts["claimed"],
            "done": counts["done"],
            "steals": steals,
            "cases_done": cases_done,
            "complete": total > 0 and counts["done"] == total,
        }
