"""Array organisation of the simulated SRAM.

The paper's evaluation uses an 8k x 32 SRAM organised as a 512-row by
512-column cell array and treats it as bit-oriented (one cell accessed per
operation).  The geometry abstraction also supports word-oriented
organisations (several bits accessed per operation through a column mux),
which the paper lists as future work and which this repository implements as
an extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class ArrayGeometry:
    """Physical organisation of the cell array.

    ``rows``
        number of word lines.
    ``columns``
        number of physical bit-line pairs.
    ``bits_per_word``
        how many columns are accessed simultaneously by one operation.  A
        bit-oriented memory (the paper's case) uses 1; a word-oriented
        memory uses the word width (the columns of one word are interleaved
        across the array and selected together).
    """

    rows: int
    columns: int
    bits_per_word: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError(f"rows must be positive, got {self.rows}")
        if self.columns <= 0:
            raise ValueError(f"columns must be positive, got {self.columns}")
        if self.bits_per_word <= 0:
            raise ValueError(f"bits_per_word must be positive, got {self.bits_per_word}")
        if self.columns % self.bits_per_word != 0:
            raise ValueError(
                f"columns ({self.columns}) must be a multiple of bits_per_word "
                f"({self.bits_per_word})"
            )

    # ------------------------------------------------------------------
    @property
    def words_per_row(self) -> int:
        """Number of addressable words on one word line."""
        return self.columns // self.bits_per_word

    @property
    def word_count(self) -> int:
        """Total number of addressable words in the array."""
        return self.rows * self.words_per_row

    @property
    def cell_count(self) -> int:
        """Total number of cells in the array."""
        return self.rows * self.columns

    @property
    def is_bit_oriented(self) -> bool:
        return self.bits_per_word == 1

    # ------------------------------------------------------------------
    # Address <-> coordinate conversions.  The *logical address* numbers
    # words row-major ("word line after word line"), which is exactly the
    # access order the low-power test mode requires; other access orders are
    # produced by the address-order generators in ``repro.march.ordering``.
    # ------------------------------------------------------------------
    def address_of(self, row: int, word: int) -> int:
        """Logical address of word ``word`` on row ``row``."""
        self.validate_coordinates(row, word)
        return row * self.words_per_row + word

    def coordinates_of(self, address: int) -> Tuple[int, int]:
        """(row, word) coordinates of a logical address."""
        if not 0 <= address < self.word_count:
            raise ValueError(
                f"address {address} out of range [0, {self.word_count})"
            )
        return divmod(address, self.words_per_row)

    def columns_of_word(self, word: int) -> Tuple[int, ...]:
        """Physical columns accessed when word ``word`` of a row is selected.

        For a bit-oriented array this is a single column.  For a
        word-oriented array the bits of one word are interleaved: bit ``b``
        of word ``w`` sits in column ``b * words_per_row + w`` (standard
        column-mux interleaving), so neighbouring words occupy neighbouring
        columns within each bit group.
        """
        if not 0 <= word < self.words_per_row:
            raise ValueError(f"word {word} out of range [0, {self.words_per_row})")
        if self.is_bit_oriented:
            return (word,)
        return tuple(b * self.words_per_row + word for b in range(self.bits_per_word))

    def word_of_column(self, column: int) -> int:
        """Which word index a physical column belongs to."""
        if not 0 <= column < self.columns:
            raise ValueError(f"column {column} out of range [0, {self.columns})")
        if self.is_bit_oriented:
            return column
        return column % self.words_per_row

    def validate_coordinates(self, row: int, word: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")
        if not 0 <= word < self.words_per_row:
            raise ValueError(f"word {word} out of range [0, {self.words_per_row})")

    def iter_addresses_row_major(self) -> Iterator[int]:
        """Addresses in 'word line after word line' order (ascending)."""
        return iter(range(self.word_count))

    def describe(self) -> str:
        """Human-readable one-line description used in reports."""
        if self.is_bit_oriented:
            return f"{self.rows}x{self.columns} bit-oriented SRAM array"
        return (
            f"{self.rows}x{self.columns} array, word-oriented "
            f"({self.bits_per_word}-bit words, {self.words_per_row} words/row)"
        )


#: The array organisation used for every experiment in the paper.
PAPER_GEOMETRY = ArrayGeometry(rows=512, columns=512, bits_per_word=1)

#: A small geometry used by unit tests and quick examples; same aspect
#: ratio semantics, laptop-friendly runtimes.
SMALL_GEOMETRY = ArrayGeometry(rows=16, columns=16, bits_per_word=1)
