"""Array organisation of the simulated SRAM.

The paper's evaluation uses an 8k x 32 SRAM organised as a 512-row by
512-column cell array and treats it as bit-oriented (one cell accessed per
operation).  The geometry abstraction also supports word-oriented
organisations (several bits accessed per operation through a column mux),
which the paper lists as future work and which this repository implements as
an extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


#: Row-to-bank interleave modes supported by banked organisations.
BANK_INTERLEAVE_MODES = ("blocked", "interleaved")


@dataclass(frozen=True)
class ArrayGeometry:
    """Physical organisation of the cell array.

    ``rows``
        number of word lines.
    ``columns``
        number of physical bit-line pairs.
    ``bits_per_word``
        how many columns are accessed simultaneously by one operation.  A
        bit-oriented memory (the paper's case) uses 1; a word-oriented
        memory uses the word width (the columns of one word are interleaved
        across the array and selected together).
    ``banks``
        number of row-partitioned sub-arrays (beyond-paper extension; the
        paper evaluates a single monolithic array, ``banks=1``).  Each bank
        owns ``rows / banks`` word lines and its own bit-line segment, so
        bit-line capacitance and floating decay scale with the *bank*
        height, not the array height.
    ``bank_interleave``
        how word-line addresses map to banks: ``"blocked"`` assigns
        contiguous row ranges to each bank (``bank = row // rows_per_bank``);
        ``"interleaved"`` stripes consecutive rows across banks
        (``bank = row % banks``).  The logical address map is unchanged in
        both modes — only the physical bank a row lives in differs.
    """

    rows: int
    columns: int
    bits_per_word: int = 1
    banks: int = 1
    bank_interleave: str = "blocked"

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError(f"rows must be positive, got {self.rows}")
        if self.columns <= 0:
            raise ValueError(f"columns must be positive, got {self.columns}")
        if self.bits_per_word <= 0:
            raise ValueError(f"bits_per_word must be positive, got {self.bits_per_word}")
        if self.bits_per_word > self.columns:
            raise ValueError(
                f"bits_per_word ({self.bits_per_word}) cannot exceed the number "
                f"of columns ({self.columns}): one operation cannot select more "
                "bit-line pairs than the array has"
            )
        if self.columns % self.bits_per_word != 0:
            raise ValueError(
                f"columns ({self.columns}) must be a multiple of bits_per_word "
                f"({self.bits_per_word})"
            )
        if self.banks <= 0:
            raise ValueError(f"banks must be positive, got {self.banks}")
        if self.rows % self.banks != 0:
            raise ValueError(
                f"rows ({self.rows}) must be a multiple of banks ({self.banks}) "
                "so every bank holds the same number of word lines"
            )
        if self.bank_interleave not in BANK_INTERLEAVE_MODES:
            raise ValueError(
                f"bank_interleave must be one of {BANK_INTERLEAVE_MODES}, "
                f"got {self.bank_interleave!r}"
            )

    # ------------------------------------------------------------------
    @property
    def words_per_row(self) -> int:
        """Number of addressable words on one word line."""
        return self.columns // self.bits_per_word

    @property
    def word_count(self) -> int:
        """Total number of addressable words in the array."""
        return self.rows * self.words_per_row

    @property
    def cell_count(self) -> int:
        """Total number of cells in the array."""
        return self.rows * self.columns

    @property
    def is_bit_oriented(self) -> bool:
        return self.bits_per_word == 1

    @property
    def is_banked(self) -> bool:
        return self.banks > 1

    @property
    def rows_per_bank(self) -> int:
        """Number of word lines (hence bit-line height) of one bank."""
        return self.rows // self.banks

    # ------------------------------------------------------------------
    # Bank address map.  Rows are partitioned over banks; decode/encode is
    # a bijection between global rows and (bank, local row) pairs in both
    # interleave modes.
    # ------------------------------------------------------------------
    def bank_of_row(self, row: int) -> int:
        """Physical bank that owns global row ``row``."""
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")
        if self.bank_interleave == "blocked":
            return row // self.rows_per_bank
        return row % self.banks

    def bank_decode(self, row: int) -> Tuple[int, int]:
        """(bank, local row within the bank) of global row ``row``."""
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")
        if self.bank_interleave == "blocked":
            return divmod(row, self.rows_per_bank)
        local, bank = divmod(row, self.banks)
        return bank, local

    def bank_encode(self, bank: int, local_row: int) -> int:
        """Global row of local row ``local_row`` in bank ``bank`` (inverse
        of :meth:`bank_decode`)."""
        if not 0 <= bank < self.banks:
            raise ValueError(f"bank {bank} out of range [0, {self.banks})")
        if not 0 <= local_row < self.rows_per_bank:
            raise ValueError(
                f"local row {local_row} out of range [0, {self.rows_per_bank})")
        if self.bank_interleave == "blocked":
            return bank * self.rows_per_bank + local_row
        return local_row * self.banks + bank

    # ------------------------------------------------------------------
    # Address <-> coordinate conversions.  The *logical address* numbers
    # words row-major ("word line after word line"), which is exactly the
    # access order the low-power test mode requires; other access orders are
    # produced by the address-order generators in ``repro.march.ordering``.
    # ------------------------------------------------------------------
    def address_of(self, row: int, word: int) -> int:
        """Logical address of word ``word`` on row ``row``."""
        self.validate_coordinates(row, word)
        return row * self.words_per_row + word

    def coordinates_of(self, address: int) -> Tuple[int, int]:
        """(row, word) coordinates of a logical address."""
        if not 0 <= address < self.word_count:
            raise ValueError(
                f"address {address} out of range [0, {self.word_count})"
            )
        return divmod(address, self.words_per_row)

    def columns_of_word(self, word: int) -> Tuple[int, ...]:
        """Physical columns accessed when word ``word`` of a row is selected.

        For a bit-oriented array this is a single column.  For a
        word-oriented array the bits of one word are interleaved: bit ``b``
        of word ``w`` sits in column ``b * words_per_row + w`` (standard
        column-mux interleaving), so neighbouring words occupy neighbouring
        columns within each bit group.
        """
        if not 0 <= word < self.words_per_row:
            raise ValueError(f"word {word} out of range [0, {self.words_per_row})")
        if self.is_bit_oriented:
            return (word,)
        return tuple(b * self.words_per_row + word for b in range(self.bits_per_word))

    def word_of_column(self, column: int) -> int:
        """Which word index a physical column belongs to."""
        if not 0 <= column < self.columns:
            raise ValueError(f"column {column} out of range [0, {self.columns})")
        if self.is_bit_oriented:
            return column
        return column % self.words_per_row

    def validate_coordinates(self, row: int, word: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")
        if not 0 <= word < self.words_per_row:
            raise ValueError(f"word {word} out of range [0, {self.words_per_row})")

    def iter_addresses_row_major(self) -> Iterator[int]:
        """Addresses in 'word line after word line' order (ascending)."""
        return iter(range(self.word_count))

    def describe(self) -> str:
        """Human-readable one-line description used in reports."""
        if self.is_bit_oriented:
            base = f"{self.rows}x{self.columns} bit-oriented SRAM array"
        else:
            base = (
                f"{self.rows}x{self.columns} array, word-oriented "
                f"({self.bits_per_word}-bit words, {self.words_per_row} words/row)"
            )
        if self.is_banked:
            base += (f", {self.banks} banks of {self.rows_per_bank} rows "
                     f"({self.bank_interleave})")
        return base


#: The array organisation used for every experiment in the paper.
PAPER_GEOMETRY = ArrayGeometry(rows=512, columns=512, bits_per_word=1)

#: A small geometry used by unit tests and quick examples; same aspect
#: ratio semantics, laptop-friendly runtimes.
SMALL_GEOMETRY = ArrayGeometry(rows=16, columns=16, bits_per_word=1)
