"""Cycle-accurate behavioural SRAM with per-source energy accounting.

This is the central substrate of the reproduction: a memory that executes
read and write operations one clock cycle at a time, tracks which pre-charge
circuits are active during each cycle, models the read-equivalent stress
(RES) of the unselected columns, the floating-bit-line behaviour of the
low-power test mode, the faulty swap at row transitions, and books every
quantum of supply energy to one of the Section 5 power sources.

The memory itself is policy-free: each access receives a
:class:`PrechargePlan` describing which pre-charge circuits are enabled
during the cycle and whether this cycle performs the full-array restoration
of the paper's row-transition rule.  The plans are produced either by the
built-in functional-mode behaviour (every unselected column pre-charged) or
by the modified pre-charge controller in :mod:`repro.core`, which is the
paper's actual contribution.

Performance note: unselected columns in functional mode all behave
identically (full RES, bit lines pinned at VDD), so their energy is booked
in aggregate instead of iterating over the whole array each cycle.  In the
low-power test mode the floating columns decay deterministically and are
only brought up to date lazily when touched (see
:class:`repro.sram.column.Column`).  This keeps a full 512 x 512 March run
tractable in pure Python while remaining exact for every quantity the
experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..circuit.technology import TechnologyParameters, default_technology
from ..power.accounting import EnergyLedger
from ..power.sources import PowerSource
from .array import BackgroundFunction, CellArray
from .cell import CellFactory
from .column import Column
from .geometry import ArrayGeometry
from .periphery import ColumnDecoder, RowDecoder, SenseAmplifier, WriteDriver
from .timing import ClockCycle


class MemoryError_(Exception):
    """Raised on illegal accesses or inconsistent pre-charge plans."""


#: Ratio of cell-side RES energy to pre-charge-side RES energy; the paper
#: measures three orders of magnitude between the two.  Shared between the
#: behavioural memory and the vectorized backend (:mod:`repro.engine`) so
#: the two execution paths cannot drift apart.
CELL_RES_RATIO = 1.0e-3


class OperatingMode(Enum):
    """Memory operating mode (Section 4)."""

    FUNCTIONAL = "functional"
    LOW_POWER_TEST = "low_power_test"


@dataclass(frozen=True)
class PrechargePlan:
    """Pre-charge commands for one access cycle.

    ``enabled_columns``
        Columns whose pre-charge circuit is ON for the whole cycle, besides
        the selected column (which is always OFF during the operation phase
        and ON during its own restoration phase).  ``None`` reproduces the
        functional-mode behaviour: every unselected column stays pre-charged.
    ``full_restore``
        True for the one functional-mode cycle the low-power test mode
        inserts at the end of each row: every column's bit lines are
        restored to VDD during the restoration phase of this cycle.
    ``control_energy``
        Switching energy spent by the modified pre-charge control logic for
        this cycle (zero in plain functional mode).
    ``lptest_toggles``
        Number of transitions of the LPtest mode-selection line during this
        cycle (the line has word-line-class capacitance; it toggles around
        the row-transition restoration cycle).
    """

    enabled_columns: Optional[FrozenSet[int]] = None
    full_restore: bool = False
    control_energy: float = 0.0
    lptest_toggles: int = 0

    def __post_init__(self) -> None:
        if self.control_energy < 0:
            raise MemoryError_("control_energy must be non-negative")
        if self.lptest_toggles < 0:
            raise MemoryError_("lptest_toggles must be non-negative")


#: The plan equivalent to the unmodified functional-mode pre-charge policy.
FUNCTIONAL_PLAN = PrechargePlan(enabled_columns=None)


@dataclass
class AccessOutcome:
    """Everything observable about one access cycle."""

    cycle: int
    row: int
    word: int
    operation: str
    value: int
    energy: float
    read_correct: Optional[bool] = None
    read_hazard: bool = False
    faulty_swaps: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class StressCounters:
    """Aggregate stress statistics maintained by the memory."""

    full_res_column_cycles: int = 0
    partial_res_column_cycles: int = 0
    floating_column_cycles: int = 0
    row_transitions: int = 0
    full_restores: int = 0
    bank_transitions: int = 0

    def reset(self) -> None:
        self.full_res_column_cycles = 0
        self.partial_res_column_cycles = 0
        self.floating_column_cycles = 0
        self.row_transitions = 0
        self.full_restores = 0
        self.bank_transitions = 0


class SRAM:
    """Behavioural SRAM memory (see module docstring)."""

    #: Fraction of VDD below which a selected column's bit lines are deemed
    #: insufficiently pre-charged for a reliable operation.
    READ_HAZARD_FRACTION = 0.7

    #: Arrays at or below this many cells get fully detailed book-keeping by
    #: default (per-event ledger entries, per-cell stress statistics).
    DETAILED_CELL_LIMIT = 65536

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None,
                 mode: OperatingMode = OperatingMode.FUNCTIONAL,
                 cell_factory: CellFactory | None = None,
                 ledger_label: str = "",
                 track_cell_stress: Optional[bool] = None,
                 detailed_ledger: Optional[bool] = None) -> None:
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.mode = mode
        self.clock = ClockCycle.from_technology(self.tech)
        self.array = CellArray(geometry, tech=self.tech, cell_factory=cell_factory)
        # One shared Column per bit-line pair, sized to the *bank* height:
        # a banked organisation splits each physical bit line into one
        # segment per bank.  Because the low-power policy fully restores
        # every column at each row's end and floating stretches never span
        # rows, at most one bank's segment carries state at a time, so a
        # single Column per pair models per-bank segments exactly.
        self.columns = [Column(index=c, rows=geometry.rows_per_bank,
                               clock=self.clock, tech=self.tech)
                        for c in range(geometry.columns)]
        self.row_decoder = RowDecoder(geometry, tech=self.tech)
        self.column_decoder = ColumnDecoder(geometry, tech=self.tech)
        self.sense_amplifier = SenseAmplifier(tech=self.tech)
        self.write_driver = WriteDriver(tech=self.tech)
        detailed_default = geometry.cell_count <= self.DETAILED_CELL_LIMIT
        self._detailed_ledger = detailed_default if detailed_ledger is None else detailed_ledger
        self.ledger = EnergyLedger(clock_period=self.clock.period,
                                   label=ledger_label or geometry.describe(),
                                   keep_events=self._detailed_ledger,
                                   track_per_cycle=self._detailed_ledger)
        self.counters = StressCounters()
        self.track_cell_stress = (detailed_default if track_cell_stress is None
                                  else track_cell_stress)
        self._cycle = 0
        self._active_row: Optional[int] = None
        #: Columns whose pre-charge is currently OFF and whose bit lines are
        #: floating (low-power test mode).  Maintained incrementally so the
        #: per-cycle work does not scale with the array width.
        self._floating_columns: set[int] = set()
        #: Complement of the floating set: columns whose bit lines are held
        #: by a pre-charge circuit (or were just operated on).  Kept so that
        #: the columns that *newly* start floating each cycle can be found
        #: without scanning the whole array.
        self._attached_columns: set[int] = set(range(geometry.columns))
        #: Per-cycle RES energy of one unselected, pre-charged column (P_A).
        self._res_energy_per_column = (
            self.tech.vdd * self.tech.res_equilibrium_current
            * self.clock.operation_duration
        )
        #: Ratio of cell-side RES energy to pre-charge-side RES energy (see
        #: the module-level :data:`CELL_RES_RATIO`).
        self._cell_res_ratio = CELL_RES_RATIO
        self._lptest_line_cap = self.tech.wordline_capacitance(geometry.columns)
        #: Currently selected bank (None before the first access).  Only
        #: tracked for banked geometries; a bank change books one
        #: bank-select line transition (beyond-paper, word-line-class load).
        self._active_bank: Optional[int] = None
        self._bank_select_energy = self.tech.swing_energy(
            self.tech.wordline_capacitance(geometry.columns))

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_mode(self, mode: OperatingMode) -> None:
        self.mode = mode

    def apply_background(self, background: BackgroundFunction) -> None:
        """Initialise every cell (no energy is charged for this shortcut)."""
        self.array.apply_background(background)

    def reset(self, ledger_label: str = "") -> None:
        """Reset dynamic state: bit lines, counters, cycle count, energy ledger."""
        for column in self.columns:
            column.reset()
        self.row_decoder.deselect()
        self.counters.reset()
        self.array.reset_statistics()
        self.ledger = EnergyLedger(clock_period=self.clock.period,
                                   label=ledger_label or self.ledger.label,
                                   keep_events=self._detailed_ledger,
                                   track_per_cycle=self._detailed_ledger)
        self._cycle = 0
        self._active_row = None
        self._active_bank = None
        self._floating_columns.clear()
        self._attached_columns = set(range(self.geometry.columns))

    @property
    def cycle(self) -> int:
        """Number of access cycles executed so far."""
        return self._cycle

    @property
    def res_energy_per_column_cycle(self) -> float:
        """The paper's P_A: pre-charge energy to sustain one RES for one cycle."""
        return self._res_energy_per_column

    # ------------------------------------------------------------------
    # Public access API
    # ------------------------------------------------------------------
    def read(self, row: int, word: int,
             plan: Optional[PrechargePlan] = None) -> AccessOutcome:
        """Read the word at ``(row, word)`` in one clock cycle."""
        return self._access("read", row, word, None, plan)

    def write(self, row: int, word: int, value: int,
              plan: Optional[PrechargePlan] = None) -> AccessOutcome:
        """Write ``value`` at ``(row, word)`` in one clock cycle."""
        return self._access("write", row, word, value, plan)

    def peek(self, row: int, word: int) -> int:
        """Non-invasive logical read (no cycle, no energy, no stress)."""
        columns = self.geometry.columns_of_word(word)
        bits = [self._require_value(row, c) for c in columns]
        return self._bits_to_word(bits)

    def poke(self, row: int, word: int, value: int) -> None:
        """Non-invasive logical write (fault-free state setup)."""
        columns = self.geometry.columns_of_word(word)
        bits = self._word_to_bits(value, len(columns))
        for column_index, bit in zip(columns, bits):
            self.array.cell(row, column_index).force(bit)

    # ------------------------------------------------------------------
    # Core access machinery
    # ------------------------------------------------------------------
    def _access(self, operation: str, row: int, word: int,
                value: Optional[int], plan: Optional[PrechargePlan]) -> AccessOutcome:
        self.geometry.validate_coordinates(row, word)
        if plan is None:
            plan = FUNCTIONAL_PLAN
        if self.mode is OperatingMode.FUNCTIONAL and plan.enabled_columns is not None:
            raise MemoryError_(
                "restricted pre-charge plans are only legal in LOW_POWER_TEST mode; "
                "switch the memory mode first"
            )
        cycle = self._cycle
        selected_columns = self.geometry.columns_of_word(word)
        op_source = (PowerSource.OPERATION_READ if operation == "read"
                     else PowerSource.OPERATION_WRITE)
        outcome = AccessOutcome(cycle=cycle, row=row, word=word,
                                operation=operation, value=0, energy=0.0)

        total_before = self.ledger.total_energy()

        # 1. Word-line / row handling (includes the faulty-swap hazard when a
        #    row transition happens over still-floating bit lines).
        self._handle_row_transition(cycle, row, outcome, op_source)

        # 2. Address decode energy.
        _, row_energy = self.row_decoder.select(row)
        _, col_energy = self.column_decoder.select(word)
        self.ledger.record_energy(cycle, op_source, row_energy + col_energy,
                                  row=row, detail="address decode + word line")

        # 3. Operation on the selected column(s).
        if operation == "read":
            outcome.value, outcome.read_correct, outcome.read_hazard = \
                self._do_read(cycle, row, selected_columns, op_source)
        else:
            assert value is not None
            outcome.value = value
            outcome.read_hazard = self._do_write(cycle, row, selected_columns,
                                                 value, op_source)
        self._floating_columns.difference_update(selected_columns)

        # 4. Unselected columns: RES for the pre-charged ones, floating decay
        #    for the rest.
        self._handle_unselected(cycle, row, selected_columns, plan)

        # 5. Row-transition full restoration (the paper's one functional-mode
        #    cycle at the end of each row in low-power test mode).
        if plan.full_restore:
            self._full_restore(cycle, exclude=selected_columns)

        # 6. Mode-control overheads.
        if plan.control_energy:
            self.ledger.record_energy(cycle, PowerSource.CONTROL_LOGIC,
                                      plan.control_energy,
                                      detail="modified pre-charge control logic")
        if plan.lptest_toggles:
            energy = plan.lptest_toggles * self.tech.swing_energy(self._lptest_line_cap)
            self.ledger.record_energy(cycle, PowerSource.LPTEST_DRIVER, energy,
                                      detail="LPtest mode-selection line")

        # 7. Array leakage for this cycle.
        leakage = (self.geometry.cell_count * self.tech.cell_leakage_current
                   * self.tech.vdd * self.clock.period)
        self.ledger.record_energy(cycle, PowerSource.LEAKAGE, leakage)

        outcome.energy = self.ledger.total_energy() - total_before
        self._cycle += 1
        return outcome

    # ------------------------------------------------------------------
    def _handle_row_transition(self, cycle: int, row: int, outcome: AccessOutcome,
                               op_source: PowerSource) -> None:
        if self._active_row == row:
            return
        if self._active_row is not None:
            self.counters.row_transitions += 1
            self.row_decoder.deselect()
        self._active_row = row
        if self.geometry.is_banked:
            bank = self.geometry.bank_of_row(row)
            if self._active_bank is not None and bank != self._active_bank:
                self.counters.bank_transitions += 1
                self.ledger.record_energy(
                    cycle, PowerSource.BANK_SELECT, self._bank_select_energy,
                    row=row, detail="bank-select line transition")
            self._active_bank = bank
        # Connecting a new row to columns whose bit lines are still floating
        # (i.e. the restoration cycle was skipped) exposes the new row's
        # cells to whatever differential the old row left behind: Figure 7's
        # faulty swap.  With the paper's restoration rule no column is
        # floating at this point and the loop below is a no-op.
        for column_index in sorted(self._floating_columns):
            column = self.columns[column_index]
            v_bl, v_blb = column.voltages_at(cycle)
            cell = self.array.cell(row, column_index)
            if cell.value is not None and cell.check_faulty_swap(v_bl, v_blb):
                outcome.faulty_swaps.append((row, column_index))
            # Whatever happened, the new row's cell now drives the pair.
            pulls = cell.pulls_bl_low() if cell.value is not None else None
            column.begin_floating(cycle, pulls)

    def _do_read(self, cycle: int, row: int, selected_columns: Sequence[int],
                 op_source: PowerSource) -> Tuple[int, bool, bool]:
        bits: List[int] = []
        hazard = False
        correct = True
        for column_index in selected_columns:
            column = self.columns[column_index]
            column.prepare_operation(cycle)
            if column.pair.lowest_voltage() < self.READ_HAZARD_FRACTION * self.tech.vdd:
                hazard = True
            cell = self.array.cell(row, column_index)
            stored = cell.read()
            swing = column.pair.develop_read_differential(cell.pulls_bl_low())
            sensed, sense_energy = self.sense_amplifier.sense(column.pair.differential())
            if sensed != stored:
                correct = False
            bits.append(sensed)
            restoration = column.finish_operation(cycle)
            self.ledger.record_energy(cycle, op_source,
                                      sense_energy + restoration.energy,
                                      column=column_index, row=row,
                                      detail="read: sense + bit-line restoration")
        return self._bits_to_word(bits), correct, hazard

    def _do_write(self, cycle: int, row: int, selected_columns: Sequence[int],
                  value: int, op_source: PowerSource) -> bool:
        bits = self._word_to_bits(value, len(selected_columns))
        hazard = False
        for column_index, bit in zip(selected_columns, bits):
            column = self.columns[column_index]
            column.prepare_operation(cycle)
            if column.pair.lowest_voltage() < self.READ_HAZARD_FRACTION * self.tech.vdd:
                hazard = True
            discharged = column.pair.force_write_levels(bit)
            driver_energy = self.write_driver.drive_energy(discharged,
                                                           column.pair.capacitance)
            self.array.cell(row, column_index).write(bit)
            restoration = column.finish_operation(cycle)
            self.ledger.record_energy(cycle, op_source,
                                      driver_energy + restoration.energy,
                                      column=column_index, row=row,
                                      detail="write: drivers + bit-line restoration")
        return hazard

    def _handle_unselected(self, cycle: int, row: int,
                           selected_columns: Sequence[int],
                           plan: PrechargePlan) -> None:
        selected = set(selected_columns)
        op_duration = self.clock.operation_duration
        if plan.enabled_columns is None:
            # Functional behaviour: every unselected column keeps its
            # pre-charge ON and its cell on the active row undergoes a full
            # RES.  All those columns behave identically, so book the energy
            # in aggregate rather than walking the array.
            if self._floating_columns:
                # Returning to the functional pre-charge policy after a
                # low-power stretch: the previously floating columns must be
                # recharged first, and that energy belongs to the pre-charge
                # circuits of unselected columns.
                recharge = 0.0
                for column_index in sorted(self._floating_columns - selected):
                    recharge += self.columns[column_index].restore(cycle).energy
                self._floating_columns.clear()
                self._attached_columns = set(range(self.geometry.columns))
                self.ledger.record_energy(cycle, PowerSource.PRECHARGE_UNSELECTED,
                                          recharge, row=row,
                                          detail="re-precharge after low-power stretch")
            count = self.geometry.columns - len(selected)
            if count <= 0:
                return
            res_energy = count * self._res_energy_per_column
            self.ledger.record_energy(cycle, PowerSource.PRECHARGE_UNSELECTED,
                                      res_energy, row=row,
                                      detail=f"RES sustained on {count} columns")
            self.ledger.record_energy(cycle, PowerSource.CELL_RES,
                                      res_energy * self._cell_res_ratio, row=row)
            self.counters.full_res_column_cycles += count
            if self.track_cell_stress and self.geometry.columns <= 128:
                for column_index in range(self.geometry.columns):
                    if column_index not in selected:
                        self.array.cell(row, column_index).apply_read_equivalent_stress()
            return

        enabled = set(plan.enabled_columns) - selected
        for column_index in enabled:
            if not 0 <= column_index < self.geometry.columns:
                raise MemoryError_(f"pre-charge plan names unknown column {column_index}")
            column = self.columns[column_index]
            energy = column.sustain_res(cycle, op_duration)
            restoration = column.restore(cycle)
            self._floating_columns.discard(column_index)
            self.ledger.record_energy(cycle, PowerSource.PRECHARGE_UNSELECTED,
                                      energy + restoration.energy,
                                      column=column_index, row=row,
                                      detail="RES sustained (next column)")
            self.ledger.record_energy(cycle, PowerSource.CELL_RES,
                                      energy * self._cell_res_ratio,
                                      column=column_index, row=row)
            self.counters.full_res_column_cycles += 1
            if self.track_cell_stress:
                self.array.cell(row, column_index).apply_read_equivalent_stress()

        # Every other unselected column floats: its pre-charge is OFF and
        # the active row's cell (still selected by the common word line)
        # interacts with the bit lines.  No supply energy is drawn — the
        # discharge is paid from charge already on the lines — but the
        # partially discharged columns still exert a reduced RES on their
        # cells (the paper's α parameter).  Only columns that are floating
        # *for the first time* need any work; the rest decay lazily.
        newly_floating = self._attached_columns - selected - enabled
        for column_index in sorted(newly_floating):
            column = self.columns[column_index]
            cell = self.array.cell(row, column_index)
            pulls = cell.pulls_bl_low() if cell.value is not None else None
            column.begin_floating(cycle, pulls)
            self._floating_columns.add(column_index)
            if self.track_cell_stress and cell.value is not None:
                cell.apply_read_equivalent_stress(partial=True)
            self.counters.partial_res_column_cycles += 1
        self._attached_columns = selected | enabled
        self.counters.floating_column_cycles += (
            self.geometry.columns - len(selected) - len(enabled))

    def _full_restore(self, cycle: int, exclude: Sequence[int]) -> None:
        """Restore every column's bit lines (the row-transition cycle)."""
        excluded = set(exclude)
        total = 0.0
        for column in self.columns:
            if column.index in excluded:
                # The selected column was already restored by its own
                # operation's restoration phase this cycle.
                continue
            result = column.restore(cycle)
            total += result.energy
        self._floating_columns.clear()
        self._attached_columns = set(range(self.geometry.columns))
        self.ledger.record_energy(cycle, PowerSource.ROW_TRANSITION_RESTORE, total,
                                  detail="full-array bit-line restoration")
        self.counters.full_restores += 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_value(self, row: int, column: int) -> int:
        value = self.array.cell(row, column).value
        if value is None:
            raise MemoryError_(f"cell ({row}, {column}) read before initialisation")
        return value

    @staticmethod
    def _word_to_bits(value: int, width: int) -> List[int]:
        if value < 0 or value >= (1 << width):
            raise MemoryError_(f"value {value} does not fit in {width} bit(s)")
        return [(value >> bit) & 1 for bit in range(width)]

    @staticmethod
    def _bits_to_word(bits: Sequence[int]) -> int:
        word = 0
        for position, bit in enumerate(bits):
            word |= (bit & 1) << position
        return word

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def average_power(self) -> float:
        """Average power per clock cycle so far (watts)."""
        return self.ledger.average_power()

    def energy_breakdown(self) -> Dict[PowerSource, float]:
        return self.ledger.energy_by_source()

    def precharge_activity_fraction(self) -> float:
        """Share of total energy spent by pre-charge activity.

        Pre-charge activity covers both the unselected columns' RES
        sustaining and the bit-line restorations folded into the operation
        energies; the latter are not separable in the ledger, so this
        reports the unselected + row-transition share, which is the lower
        bound the experiments compare against the paper's 70-80 % claim.
        """
        return (self.ledger.source_fraction(PowerSource.PRECHARGE_UNSELECTED)
                + self.ledger.source_fraction(PowerSource.ROW_TRANSITION_RESTORE))
