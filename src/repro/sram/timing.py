"""Clock-cycle timing of the SRAM operations.

The paper's Figure 2 splits every clock cycle of the selected column into an
operation phase (pre-charge OFF, first half of the cycle) followed by a
bit-line restoration phase (pre-charge ON, second half), while unselected
columns in functional mode keep their pre-charge ON for the full cycle (RES
during the first half, restoration during the second).  This module captures
that cycle structure so that the behavioural memory, the power model and the
transient fixtures all agree on interval durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..circuit.technology import TechnologyParameters, default_technology


class CyclePhase(Enum):
    """The two halves of an SRAM access cycle."""

    OPERATION = "operation"
    RESTORATION = "restoration"


@dataclass(frozen=True)
class ClockCycle:
    """Durations of the phases of one access cycle."""

    period: float
    operation_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("clock period must be positive")
        if not 0.0 < self.operation_fraction < 1.0:
            raise ValueError("operation_fraction must lie strictly between 0 and 1")

    @property
    def operation_duration(self) -> float:
        """Length of the operation / stress phase (pre-charge OFF on the selected column)."""
        return self.period * self.operation_fraction

    @property
    def restoration_duration(self) -> float:
        """Length of the restoration phase (pre-charge ON everywhere)."""
        return self.period - self.operation_duration

    def phase_duration(self, phase: CyclePhase) -> float:
        if phase is CyclePhase.OPERATION:
            return self.operation_duration
        return self.restoration_duration

    @classmethod
    def from_technology(cls, tech: TechnologyParameters | None = None,
                        operation_fraction: float = 0.5) -> "ClockCycle":
        tech = tech or default_technology()
        return cls(period=tech.clock_period, operation_fraction=operation_fraction)


@dataclass
class TestClock:
    """A running cycle counter with absolute-time conversion."""

    cycle: ClockCycle
    elapsed_cycles: int = 0

    def tick(self, cycles: int = 1) -> None:
        if cycles < 0:
            raise ValueError("cannot tick a negative number of cycles")
        self.elapsed_cycles += cycles

    @property
    def elapsed_time(self) -> float:
        return self.elapsed_cycles * self.cycle.period

    def reset(self) -> None:
        self.elapsed_cycles = 0
