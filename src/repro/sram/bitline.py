"""Bit-line pair model: the dominant capacitances of the SRAM array.

Each column owns a pair of long, highly capacitive lines (BL and BLB).
Their charging/discharging is what makes the pre-charge circuitry the main
power consumer of an SRAM (the paper quotes 70-80 % of total power, after
reference [8]).  The behavioural model tracks the pair's voltages cycle by
cycle:

* an active pre-charge restores both lines to VDD (energy drawn from the
  supply proportional to the restored swing);
* a read or write develops/forces a differential on the pair;
* with the pre-charge disabled (low-power test mode) the lines float and the
  selected cell slowly discharges one of them — an exponential decay whose
  time constant is calibrated so that the line reaches logic '0' in roughly
  nine clock cycles, matching the paper's Figure 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..circuit.technology import TechnologyParameters, default_technology


class BitLineError(Exception):
    """Raised on invalid bit-line manipulations."""


@dataclass
class RestorationResult:
    """Outcome of a pre-charge restoration on one bit-line pair."""

    swing_bl: float
    swing_blb: float
    energy: float

    @property
    def total_swing(self) -> float:
        return self.swing_bl + self.swing_blb


class BitLinePair:
    """Voltages and charge book-keeping of one column's BL/BLB pair."""

    #: Voltage fraction of VDD under which a line reads as logic '0'.
    LOGIC_LOW_FRACTION = 0.3
    #: Voltage fraction of VDD above which a line reads as logic '1'.
    LOGIC_HIGH_FRACTION = 0.7

    def __init__(self, rows: int, tech: TechnologyParameters | None = None) -> None:
        if rows <= 0:
            raise BitLineError(f"rows must be positive, got {rows}")
        self.tech = tech or default_technology()
        self.rows = rows
        self.capacitance = self.tech.bitline_capacitance(rows)
        vdd = self.tech.vdd
        self.v_bl = vdd
        self.v_blb = vdd

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def vdd(self) -> float:
        return self.tech.vdd

    def differential(self) -> float:
        """BL minus BLB voltage."""
        return self.v_bl - self.v_blb

    def is_fully_precharged(self, tolerance_fraction: float = 0.02) -> bool:
        """Both lines within ``tolerance_fraction`` of VDD."""
        tol = tolerance_fraction * self.vdd
        return (self.vdd - self.v_bl) <= tol and (self.vdd - self.v_blb) <= tol

    def bl_is_logic_low(self) -> bool:
        return self.v_bl <= self.LOGIC_LOW_FRACTION * self.vdd

    def blb_is_logic_low(self) -> bool:
        return self.v_blb <= self.LOGIC_LOW_FRACTION * self.vdd

    def lowest_voltage(self) -> float:
        return min(self.v_bl, self.v_blb)

    # ------------------------------------------------------------------
    # Pre-charge restoration
    # ------------------------------------------------------------------
    def restore(self) -> RestorationResult:
        """Restore both lines to VDD through the pre-charge circuit.

        Returns the swings that were recharged and the supply energy this
        cost (C · ΔV · VDD per line, plus the equalisation overhead factor
        from the technology description).
        """
        swing_bl = self.vdd - self.v_bl
        swing_blb = self.vdd - self.v_blb
        if swing_bl < 0 or swing_blb < 0:
            raise BitLineError("bit-line voltage above VDD; state is corrupted")
        energy = self.tech.swing_energy(self.capacitance, swing_bl)
        energy += self.tech.swing_energy(self.capacitance, swing_blb)
        energy *= 1.0 + self.tech.precharge_overhead_factor
        self.v_bl = self.vdd
        self.v_blb = self.vdd
        return RestorationResult(swing_bl=swing_bl, swing_blb=swing_blb, energy=energy)

    # ------------------------------------------------------------------
    # Operations on the selected column
    # ------------------------------------------------------------------
    def develop_read_differential(self, cell_pulls_bl_low: bool,
                                  swing_fraction: float = 0.5) -> float:
        """Develop the small read differential on the pair.

        The accessed cell sinks charge from one line for the first half of
        the clock cycle.  The default swing (half the supply) reflects the
        conservative, non-pulsed sensing scheme assumed for the paper's
        memory; the pre-charge circuit recharges it during the second half
        of the cycle.  Returns the developed swing in volts.
        """
        if not 0.0 < swing_fraction <= 1.0:
            raise BitLineError("swing_fraction must be in (0, 1]")
        swing = swing_fraction * self.vdd
        if cell_pulls_bl_low:
            self.v_bl = max(0.0, self.v_bl - swing)
        else:
            self.v_blb = max(0.0, self.v_blb - swing)
        return swing

    def force_write_levels(self, value: int) -> float:
        """Drive the pair to full write levels for the given value.

        The write drivers pull one line to ground and hold the other at
        VDD.  Following the cell convention ('1' keeps BL low), writing '1'
        discharges BL and writing '0' discharges BLB.  Returns the total
        voltage swing discharged (the pre-charge circuit will have to put it
        back at the end of the cycle).
        """
        if value not in (0, 1):
            raise BitLineError(f"write value must be 0 or 1, got {value!r}")
        discharged = 0.0
        if value == 1:
            discharged += self.v_bl
            self.v_bl = 0.0
            self.v_blb = self.vdd
        else:
            discharged += self.v_blb
            self.v_blb = 0.0
            self.v_bl = self.vdd
        return discharged

    # ------------------------------------------------------------------
    # Floating behaviour (pre-charge disabled, low-power test mode)
    # ------------------------------------------------------------------
    def float_with_cell(self, cell_pulls_bl_low: bool, duration: float) -> float:
        """Let the selected cell discharge the floating pair for ``duration``.

        Only the line on the cell's '0' node is discharged; the other line
        stays where it is (both it and the cell node are at VDD, so no
        charge moves — Figure 6a/6b).  Returns the voltage drop on the
        discharged line during this interval.
        """
        if duration < 0:
            raise BitLineError("duration must be non-negative")
        tau = self.tech.floating_discharge_tau(self.rows)
        decay = math.exp(-duration / tau)
        if cell_pulls_bl_low:
            before = self.v_bl
            self.v_bl = before * decay
            return before - self.v_bl
        before = self.v_blb
        self.v_blb = before * decay
        return before - self.v_blb

    def float_idle(self, duration: float, leakage_tau: float = 1.0e-3) -> None:
        """Leakage decay of a floating pair not connected to any cell.

        The time constant is huge compared with a test session; this exists
        so long idle periods (retention-style experiments) behave sanely.
        """
        if duration < 0:
            raise BitLineError("duration must be non-negative")
        decay = math.exp(-duration / leakage_tau)
        self.v_bl *= decay
        self.v_blb *= decay

    def residual_stress_fraction(self) -> float:
        """How much read-equivalent stress a floating pair still exerts.

        1.0 when both lines are at VDD (full RES on the attached cell), and
        it decreases with the discharged line's voltage: once the line the
        cell is pulling down reaches logic '0' the cell no longer fights
        anything (Figure 6b — "no more power consumption associated with
        RES").  Used to model the paper's α parameter (the few cells that
        still see a reduced RES while their bit line decays).
        """
        return self.lowest_voltage() / self.vdd

    def snapshot(self) -> tuple[float, float]:
        """Return ``(v_bl, v_blb)``."""
        return (self.v_bl, self.v_blb)
