"""Peripheral circuits of the SRAM: decoders, sense amplifiers, write drivers.

These blocks are not where the paper's savings come from — the proposed
scheme leaves them untouched — but they contribute to the per-operation
energies P_r and P_w that form the denominator of the Power Reduction Ratio,
so the behavioural memory models them explicitly.  Their energies are simple
switched-capacitance estimates derived from the technology description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..circuit.technology import TechnologyParameters, default_technology
from .geometry import ArrayGeometry


class DecoderError(Exception):
    """Raised on malformed addresses."""


@dataclass
class RowDecoder:
    """Row (word-line) address decoder and word-line driver.

    Energy per access: the decoder's internal switching plus charging the
    selected word line (the big contributor — it spans every column).
    """

    geometry: ArrayGeometry
    tech: TechnologyParameters

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None) -> None:
        self.geometry = geometry
        self.tech = tech or default_technology()
        self._last_row: int | None = None
        self.activations = 0

    def address_bits(self) -> int:
        bits = 0
        while (1 << bits) < self.geometry.rows:
            bits += 1
        return bits

    def select(self, row: int) -> Tuple[int, float]:
        """Activate word line ``row``; return (row, energy).

        Consecutive accesses to the same row do not recharge the word line
        (it stays asserted across the operations of one March element in the
        word-line-after-word-line order), which mirrors how a real
        word-line driver behaves between consecutive same-row cycles.
        """
        if not 0 <= row < self.geometry.rows:
            raise DecoderError(f"row {row} out of range [0, {self.geometry.rows})")
        energy = self._decode_energy()
        if row != self._last_row:
            wordline_cap = self.tech.wordline_capacitance(self.geometry.columns)
            energy += self.tech.swing_energy(wordline_cap)
            self._last_row = row
        self.activations += 1
        return row, energy

    def _decode_energy(self) -> float:
        # A handful of gates toggle per decode: n address inverters plus the
        # selected AND tree.  Approximate with 4 gate loads per address bit.
        gates = 4 * max(1, self.address_bits())
        cap = gates * 2.0e-15
        return self.tech.swing_energy(cap)

    def deselect(self) -> None:
        """Drop the currently asserted word line (end of a row's activity)."""
        self._last_row = None


@dataclass
class ColumnDecoder:
    """Column (bit-line mux) address decoder."""

    geometry: ArrayGeometry
    tech: TechnologyParameters

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None) -> None:
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.activations = 0

    def address_bits(self) -> int:
        bits = 0
        while (1 << bits) < self.geometry.words_per_row:
            bits += 1
        return bits

    def select(self, word: int) -> Tuple[Tuple[int, ...], float]:
        """Return the physical columns of ``word`` and the decode energy."""
        if not 0 <= word < self.geometry.words_per_row:
            raise DecoderError(
                f"word {word} out of range [0, {self.geometry.words_per_row})"
            )
        columns = self.geometry.columns_of_word(word)
        gates = 4 * max(1, self.address_bits())
        cap = gates * 2.0e-15 + len(columns) * 3.0e-15
        self.activations += 1
        return columns, self.tech.swing_energy(cap)


class SenseAmplifier:
    """Differential sense amplifier of one column group."""

    def __init__(self, tech: TechnologyParameters | None = None) -> None:
        self.tech = tech or default_technology()
        self.sense_count = 0

    def sense(self, differential: float) -> Tuple[int, float]:
        """Resolve a read differential into a bit and return (bit, energy).

        The sign convention matches the cell model: the cell storing '1'
        discharges BL, so a negative BL-minus-BLB differential reads as '1'.
        """
        if differential == 0.0:
            raise ValueError("sense amplifier fired with zero differential")
        value = 1 if differential < 0 else 0
        # Energy: regenerative latch firing plus the output driver.
        cap = 12e-15
        self.sense_count += 1
        return value, self.tech.swing_energy(cap)


class WriteDriver:
    """Write driver of one column group."""

    def __init__(self, tech: TechnologyParameters | None = None) -> None:
        self.tech = tech or default_technology()
        self.write_count = 0

    def drive_energy(self, discharged_swing: float, bitline_capacitance: float) -> float:
        """Energy to force the bit lines to full write levels.

        ``discharged_swing`` is the voltage the driver had to pull low on
        the bit line it discharges (returned by
        :meth:`repro.sram.bitline.BitLinePair.force_write_levels`); pulling
        a line low costs the crowbar/driver internal energy, while the
        pre-charge circuit later pays to recharge it.
        """
        if discharged_swing < 0 or bitline_capacitance < 0:
            raise ValueError("swing and capacitance must be non-negative")
        driver_internal_cap = 8e-15
        self.write_count += 1
        crowbar = 0.1 * bitline_capacitance * discharged_swing * self.tech.vdd
        return self.tech.swing_energy(driver_internal_cap) + crowbar
