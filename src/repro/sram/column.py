"""Per-column bundle: bit-line pair, pre-charge circuit and floating state.

The behavioural memory orchestrates one :class:`Column` per physical
bit-line pair.  Besides wiring the pair to its pre-charge circuit, the
column keeps the lazy "floating" book-keeping that makes the low-power test
mode simulation fast on large arrays: a column whose pre-charge has been
switched off decays deterministically (exponentially, driven by the
connected cell), so its voltage only needs to be brought up to date when the
column is next touched — when it is restored, re-selected, or checked for
the faulty swap of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..circuit.technology import TechnologyParameters, default_technology
from .bitline import BitLinePair, RestorationResult
from .precharge import PrechargeCircuit
from .timing import ClockCycle


class ColumnError(Exception):
    """Raised on inconsistent column state transitions."""


@dataclass
class FloatingContext:
    """What has been driving a floating column since its pre-charge went off."""

    since_cycle: int
    #: True when the connected cell pulls BL low, False when it pulls BLB
    #: low, None when no word line is asserted (pure leakage float).
    cell_pulls_bl_low: Optional[bool]


class Column:
    """One column of the array: BL/BLB pair + pre-charge circuit + state."""

    def __init__(self, index: int, rows: int, clock: ClockCycle,
                 tech: TechnologyParameters | None = None,
                 bank_index: int = 0) -> None:
        self.tech = tech or default_technology()
        self.index = index
        self.bank_index = bank_index
        self.clock = clock
        self.pair = BitLinePair(rows=rows, tech=self.tech)
        self.precharge = PrechargeCircuit(column_index=index, rows=rows,
                                          tech=self.tech, bank_index=bank_index)
        self._floating: Optional[FloatingContext] = None
        self._last_update_cycle = 0

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def is_floating(self) -> bool:
        return self._floating is not None

    @property
    def floating_since(self) -> Optional[int]:
        return self._floating.since_cycle if self._floating else None

    def voltages_at(self, cycle: int) -> tuple[float, float]:
        """Bit-line voltages as of the start of ``cycle`` (applies lazy decay)."""
        self.catch_up(cycle)
        return self.pair.snapshot()

    # ------------------------------------------------------------------
    # Floating book-keeping
    # ------------------------------------------------------------------
    def begin_floating(self, cycle: int, cell_pulls_bl_low: Optional[bool]) -> None:
        """Mark the column as floating starting at ``cycle``.

        If it is already floating only the driving-cell context is updated
        (this happens at a row transition when the restoration cycle has
        been skipped and a different cell takes over the lines).
        """
        self.catch_up(cycle)
        self.precharge.set_enabled(False)
        if self._floating is None:
            self._floating = FloatingContext(since_cycle=cycle,
                                             cell_pulls_bl_low=cell_pulls_bl_low)
        else:
            self._floating.cell_pulls_bl_low = cell_pulls_bl_low

    def catch_up(self, cycle: int) -> None:
        """Bring the pair's voltages up to the start of ``cycle``."""
        if cycle < self._last_update_cycle:
            raise ColumnError(
                f"column {self.index}: catch_up to cycle {cycle} before "
                f"last update at cycle {self._last_update_cycle}"
            )
        elapsed_cycles = cycle - self._last_update_cycle
        if elapsed_cycles and self._floating is not None:
            duration = elapsed_cycles * self.clock.period
            if self._floating.cell_pulls_bl_low is None:
                self.pair.float_idle(duration)
            else:
                self.pair.float_with_cell(self._floating.cell_pulls_bl_low, duration)
        self._last_update_cycle = cycle

    # ------------------------------------------------------------------
    # Pre-charge actions
    # ------------------------------------------------------------------
    def restore(self, cycle: int) -> RestorationResult:
        """Restore the pair to VDD at ``cycle`` and leave the pre-charge ON."""
        self.catch_up(cycle)
        self.precharge.set_enabled(True)
        result = self.precharge.restore_pair(self.pair)
        self._floating = None
        return result

    def sustain_res(self, cycle: int, duration: float,
                    stress_fraction: float = 1.0) -> float:
        """Hold the pair against a stressed cell for ``duration`` seconds."""
        self.catch_up(cycle)
        self.precharge.set_enabled(True)
        self._floating = None
        return self.precharge.sustain_res(duration, stress_fraction)

    def prepare_operation(self, cycle: int) -> None:
        """Selected-column setup: pre-charge OFF for the operation phase."""
        self.catch_up(cycle)
        self.precharge.set_enabled(False)
        self._floating = None

    def finish_operation(self, cycle: int) -> RestorationResult:
        """Selected-column wrap-up: pre-charge ON, bit lines restored."""
        self.precharge.set_enabled(True)
        result = self.precharge.restore_pair(self.pair)
        self._last_update_cycle = cycle
        self._floating = None
        return result

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return the column to the powered-up, fully pre-charged state."""
        self.pair.v_bl = self.tech.vdd
        self.pair.v_blb = self.tech.vdd
        self.precharge.set_enabled(True)
        self.precharge.reset_statistics()
        self._floating = None
        self._last_update_cycle = 0
