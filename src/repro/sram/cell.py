"""Behavioural model of the 6T SRAM cell.

The behavioural cell carries the stored bit, its interaction with the bit
lines (read, write, read-equivalent stress, and the floating-bit-line
interaction central to the low-power test mode of the paper), and the
stress statistics the power model consumes.

Conventions follow the paper's Figure 5: a cell storing logic '1' has its
internal node S at '0' and node SB at '1'; when such a cell is connected to
floating bit lines it progressively discharges BL (the true bit line) while
BLB remains at VDD.  A cell storing '0' discharges BLB instead.

The cell also exposes the swap rule behind Figure 7: if the bit lines carry
a strong differential that contradicts the stored value while the word line
is active and the pre-charge is off, the bit-line capacitance (three orders
of magnitude larger than the cell nodes) overwrites the cell — the "faulty
swap" the one-cycle restoration at each row transition is designed to
prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..circuit.technology import TechnologyParameters, default_technology


class CellError(Exception):
    """Raised on invalid cell operations (bad values, reading unknown state...)."""


def _validate_bit(value: int) -> int:
    if value not in (0, 1):
        raise CellError(f"cell values must be 0 or 1, got {value!r}")
    return int(value)


@dataclass
class CellStressStatistics:
    """Stress events accumulated by one cell during a simulation."""

    full_res_count: int = 0
    partial_res_count: int = 0
    reads: int = 0
    writes: int = 0
    faulty_swaps: int = 0

    def reset(self) -> None:
        self.full_res_count = 0
        self.partial_res_count = 0
        self.reads = 0
        self.writes = 0
        self.faulty_swaps = 0


class SixTransistorCell:
    """One 6T SRAM cell with behavioural read/write/disturb semantics."""

    #: Fraction of VDD below which a bit line is considered a "strong low"
    #: able to overwrite the cell when the opposite line is high
    #: (Figure 7's faulty swap condition).
    SWAP_LOW_THRESHOLD = 0.35
    #: Fraction of VDD above which a bit line counts as a "strong high".
    SWAP_HIGH_THRESHOLD = 0.75

    def __init__(self, value: Optional[int] = None,
                 tech: TechnologyParameters | None = None) -> None:
        self.tech = tech or default_technology()
        self._value: Optional[int] = None if value is None else _validate_bit(value)
        self.stats = CellStressStatistics()

    # ------------------------------------------------------------------
    # Stored state
    # ------------------------------------------------------------------
    @property
    def value(self) -> Optional[int]:
        """Currently stored bit, or ``None`` before the first write."""
        return self._value

    def is_initialised(self) -> bool:
        return self._value is not None

    def write(self, value: int) -> None:
        """Functional write: the write drivers overpower the cell."""
        self._value = _validate_bit(value)
        self.stats.writes += 1

    def read(self) -> int:
        """Functional read: returns the stored bit.

        Reading an uninitialised cell raises; March tests always start with
        a write-background element, so this indicates a harness bug rather
        than a legal memory state.
        """
        if self._value is None:
            raise CellError("read of uninitialised cell")
        self.stats.reads += 1
        return self._value

    def force(self, value: Optional[int]) -> None:
        """Set the stored state without counting a functional write.

        Used by fault injection and by the faulty-swap mechanism.
        """
        self._value = None if value is None else _validate_bit(value)

    # ------------------------------------------------------------------
    # Stress events
    # ------------------------------------------------------------------
    def apply_read_equivalent_stress(self, partial: bool = False) -> None:
        """Record a read-equivalent stress (RES).

        In functional mode every cell of the selected row whose column keeps
        its pre-charge active undergoes a full RES each cycle.  In the
        low-power test mode only the next-to-be-selected column sees a full
        RES; a handful of columns whose bit lines have not fully discharged
        yet see *partial* RES (the paper's α, with 2 < α < 10).
        """
        if partial:
            self.stats.partial_res_count += 1
        else:
            self.stats.full_res_count += 1

    # ------------------------------------------------------------------
    # Floating bit-line interaction (low-power test mode)
    # ------------------------------------------------------------------
    def pulls_bl_low(self) -> bool:
        """True when the stored value discharges BL (as opposed to BLB).

        Paper convention (Figure 5/6): a stored '1' has node S at '0'
        connected to BL, so BL is the line discharged.
        """
        if self._value is None:
            raise CellError("uninitialised cell has no defined bit-line interaction")
        return self._value == 1

    def check_faulty_swap(self, v_bl: float, v_blb: float) -> bool:
        """Apply Figure 7's swap rule for given floating bit-line voltages.

        Returns ``True`` and flips the stored value when the bit lines carry
        a strong differential opposite to the stored data (the bit lines win
        because their capacitance dwarfs the cell's).  Voltages are absolute
        volts.
        """
        if self._value is None:
            return False
        vdd = self.tech.vdd
        low = self.SWAP_LOW_THRESHOLD * vdd
        high = self.SWAP_HIGH_THRESHOLD * vdd
        # A cell storing '1' keeps BL low / BLB high once it has driven the
        # lines; it is overwritten if it instead finds BL strongly high and
        # BLB strongly low (and vice versa for a stored '0').
        if self._value == 1 and v_bl >= high and v_blb <= low:
            self._flip()
            return True
        if self._value == 0 and v_blb >= high and v_bl <= low:
            self._flip()
            return True
        return False

    def _flip(self) -> None:
        assert self._value is not None
        self._value = 1 - self._value
        self.stats.faulty_swaps += 1

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SixTransistorCell(value={self._value!r})"


class CellFactory:
    """Creates the cells of an array; the fault simulator substitutes its own.

    Keeping construction behind a factory lets :mod:`repro.faults` inject
    faulty cell variants at chosen coordinates without the array model
    knowing anything about fault models.
    """

    def __init__(self, tech: TechnologyParameters | None = None) -> None:
        self.tech = tech or default_technology()

    def create(self, row: int, column: int) -> SixTransistorCell:
        """Create the cell for physical position ``(row, column)``."""
        return SixTransistorCell(tech=self.tech)
