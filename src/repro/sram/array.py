"""Cell array: the grid of 6T cells plus data-background helpers.

The array is purely logical (which cell stores what); all electrical
behaviour lives in the column/bit-line/pre-charge models and in the memory
model that orchestrates them.  Keeping the array separate lets the fault
simulator run March algorithms directly against the logical state when it
does not need power numbers, and lets the fault-injection machinery replace
individual cells with faulty variants through the :class:`CellFactory`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..circuit.technology import TechnologyParameters, default_technology
from .cell import CellFactory, SixTransistorCell
from .geometry import ArrayGeometry


class ArrayError(Exception):
    """Raised on out-of-range coordinates or malformed backgrounds."""


#: A data background assigns an initial value to every cell, as a function
#: of its (row, column) position.
BackgroundFunction = Callable[[int, int], int]


def solid_background(value: int) -> BackgroundFunction:
    """All cells hold ``value`` (the classical solid background)."""
    if value not in (0, 1):
        raise ArrayError(f"background value must be 0 or 1, got {value!r}")
    return lambda row, col: value


def checkerboard_background(invert: bool = False) -> BackgroundFunction:
    """Classical checkerboard background (cell value = parity of row+col)."""
    def background(row: int, col: int) -> int:
        bit = (row + col) & 1
        return 1 - bit if invert else bit
    return background


def row_stripe_background(invert: bool = False) -> BackgroundFunction:
    """Alternating rows of 0s and 1s."""
    def background(row: int, col: int) -> int:
        bit = row & 1
        return 1 - bit if invert else bit
    return background


def column_stripe_background(invert: bool = False) -> BackgroundFunction:
    """Alternating columns of 0s and 1s."""
    def background(row: int, col: int) -> int:
        bit = col & 1
        return 1 - bit if invert else bit
    return background


class CellArray:
    """The rows x columns grid of behavioural cells."""

    def __init__(self, geometry: ArrayGeometry,
                 tech: TechnologyParameters | None = None,
                 cell_factory: CellFactory | None = None) -> None:
        self.geometry = geometry
        self.tech = tech or default_technology()
        self.factory = cell_factory or CellFactory(tech=self.tech)
        self._cells: List[List[SixTransistorCell]] = [
            [self.factory.create(row, col) for col in range(geometry.columns)]
            for row in range(geometry.rows)
        ]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def cell(self, row: int, column: int) -> SixTransistorCell:
        self._check(row, column)
        return self._cells[row][column]

    def replace_cell(self, row: int, column: int, cell: SixTransistorCell) -> SixTransistorCell:
        """Swap in a different cell object (fault injection); returns the old one."""
        self._check(row, column)
        old = self._cells[row][column]
        self._cells[row][column] = cell
        return old

    def _check(self, row: int, column: int) -> None:
        if not 0 <= row < self.geometry.rows:
            raise ArrayError(f"row {row} out of range [0, {self.geometry.rows})")
        if not 0 <= column < self.geometry.columns:
            raise ArrayError(f"column {column} out of range [0, {self.geometry.columns})")

    def iter_cells(self) -> Iterator[Tuple[int, int, SixTransistorCell]]:
        for row_index, row in enumerate(self._cells):
            for col_index, cell in enumerate(row):
                yield row_index, col_index, cell

    def row_cells(self, row: int) -> List[SixTransistorCell]:
        self._check(row, 0)
        return list(self._cells[row])

    # ------------------------------------------------------------------
    # Bulk state manipulation
    # ------------------------------------------------------------------
    def apply_background(self, background: BackgroundFunction) -> None:
        """Force every cell to the background value (no write energy counted)."""
        for row, col, cell in self.iter_cells():
            cell.force(background(row, col))

    def clear(self) -> None:
        """Return every cell to the uninitialised state."""
        for _, _, cell in self.iter_cells():
            cell.force(None)

    def snapshot(self) -> List[List[Optional[int]]]:
        """Copy of the logical contents (None for uninitialised cells)."""
        return [[cell.value for cell in row] for row in self._cells]

    def load_snapshot(self, snapshot: List[List[Optional[int]]]) -> None:
        if len(snapshot) != self.geometry.rows:
            raise ArrayError("snapshot row count does not match the geometry")
        for row_index, row in enumerate(snapshot):
            if len(row) != self.geometry.columns:
                raise ArrayError("snapshot column count does not match the geometry")
            for col_index, value in enumerate(row):
                self._cells[row_index][col_index].force(value)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def count_value(self, value: int) -> int:
        """Number of cells currently storing ``value``."""
        if value not in (0, 1):
            raise ArrayError(f"value must be 0 or 1, got {value!r}")
        return sum(1 for _, _, cell in self.iter_cells() if cell.value == value)

    def total_faulty_swaps(self) -> int:
        return sum(cell.stats.faulty_swaps for _, _, cell in self.iter_cells())

    def total_full_res(self) -> int:
        return sum(cell.stats.full_res_count for _, _, cell in self.iter_cells())

    def total_partial_res(self) -> int:
        return sum(cell.stats.partial_res_count for _, _, cell in self.iter_cells())

    def reset_statistics(self) -> None:
        for _, _, cell in self.iter_cells():
            cell.stats.reset()

    def differences(self, other_snapshot: List[List[Optional[int]]]) -> List[Tuple[int, int]]:
        """Coordinates whose current value differs from ``other_snapshot``."""
        diffs: List[Tuple[int, int]] = []
        for row, col, cell in self.iter_cells():
            if cell.value != other_snapshot[row][col]:
                diffs.append((row, col))
        return diffs
