"""Pre-charge circuit model — the protagonist of the paper.

Each column owns a pre-charge circuit (two pull-up PMOS plus an equalisation
PMOS) whose job is to restore and equalise BL/BLB to VDD after every
operation.  In functional mode the circuit of every unselected column stays
ON for the whole cycle, sustaining the read-equivalent stress (RES) of the
cells on the active row: the cells pull one bit line down while the
pre-charge pulls it back up, and that fight is the single biggest power
consumer of the memory during test.

The model tracks the ON/OFF state commanded by the control logic (normal
pre-charge signal ``Pr_j`` in functional mode, the modified ``NPr_j`` of
Figure 8 in the low-power test mode), counts activity, and converts the
physical work it does into supply energy:

* :meth:`restore_pair` — recharging the column's bit lines at the end of an
  operation or at a row transition (energy proportional to the restored
  swing);
* :meth:`sustain_res` — holding the bit lines at VDD against a selected
  cell for one stress interval (the per-cycle energy the proposed scheme
  removes on all but one column).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuit.technology import TechnologyParameters, default_technology
from .bitline import BitLinePair, RestorationResult


class PrechargeError(Exception):
    """Raised on inconsistent pre-charge commands."""


@dataclass
class PrechargeActivity:
    """Activity counters of one pre-charge circuit."""

    cycles_on: int = 0
    cycles_off: int = 0
    restorations: int = 0
    res_intervals: int = 0
    energy: float = 0.0

    def reset(self) -> None:
        self.cycles_on = 0
        self.cycles_off = 0
        self.restorations = 0
        self.res_intervals = 0
        self.energy = 0.0


class PrechargeCircuit:
    """Behavioural pre-charge circuit of one column."""

    def __init__(self, column_index: int, rows: int,
                 tech: TechnologyParameters | None = None,
                 bank_index: int = 0) -> None:
        if column_index < 0:
            raise PrechargeError("column_index must be non-negative")
        if bank_index < 0:
            raise PrechargeError("bank_index must be non-negative")
        self.tech = tech or default_technology()
        self.column_index = column_index
        #: Sub-array bank this circuit serves.  ``rows`` is the bit-line
        #: height the circuit restores against — in a banked organisation
        #: that is the *bank* height, not the whole array.
        self.bank_index = bank_index
        self.rows = rows
        self.enabled = True
        self.activity = PrechargeActivity()

    def describe(self) -> str:
        """Identity string used in error messages and reports."""
        if self.bank_index:
            return f"bank {self.bank_index}, column {self.column_index}"
        return f"column {self.column_index}"

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def set_enabled(self, enabled: bool) -> None:
        """Command the circuit for the current cycle (ON = pre-charging)."""
        self.enabled = bool(enabled)

    def record_cycle_state(self) -> None:
        """Count the commanded state for this cycle (activity statistics)."""
        if self.enabled:
            self.activity.cycles_on += 1
        else:
            self.activity.cycles_off += 1

    # ------------------------------------------------------------------
    # Physical work
    # ------------------------------------------------------------------
    def restore_pair(self, pair: BitLinePair) -> RestorationResult:
        """Restore the column's bit lines to VDD.

        Only legal while the circuit is enabled; the energy is charged to
        this circuit's accumulator and also returned to the caller so the
        memory model can attribute it to the right power source (operation
        restoration vs. row-transition restoration).
        """
        if not self.enabled:
            raise PrechargeError(
                f"{self.describe()}: restoration requested while pre-charge is OFF"
            )
        result = pair.restore()
        self.activity.restorations += 1
        self.activity.energy += result.energy
        return result

    def sustain_res(self, duration: float, stress_fraction: float = 1.0) -> float:
        """Energy spent holding the bit lines against a stressed cell.

        ``duration`` is the stress interval (half a clock cycle in the
        paper's Figure 2c timing — the operation phase; the restoration
        phase is billed through :meth:`restore_pair`).  ``stress_fraction``
        scales the fight for partially discharged floating lines (the few
        cells that still see a *reduced* RES in low-power test mode).

        The energy model: during the stress the cell's pull-down conducts a
        quasi-DC current from the pre-charge PMOS to ground.  We size that
        current from the technology's cell pull-down path at full drive and
        charge V_DD · I · duration to the supply.
        """
        if not self.enabled:
            raise PrechargeError(
                f"{self.describe()}: RES sustained while pre-charge is OFF"
            )
        if duration < 0:
            raise PrechargeError("duration must be non-negative")
        if not 0.0 <= stress_fraction <= 1.0:
            raise PrechargeError("stress_fraction must be within [0, 1]")
        current = self._res_current()
        energy = self.tech.vdd * current * duration * stress_fraction
        self.activity.res_intervals += 1
        self.activity.energy += energy
        return energy

    def _res_current(self) -> float:
        """Quasi-DC current of the pre-charge/cell fight during a RES.

        The technology description carries this as a calibrated equilibrium
        current (see
        :attr:`repro.circuit.technology.TechnologyParameters.res_equilibrium_current`):
        the initial transient settles quickly and the remaining fight is a
        small static current that the pre-charge PMOS keeps replacing for as
        long as the word line stays high.
        """
        return self.tech.res_equilibrium_current

    # ------------------------------------------------------------------
    def control_gate_capacitance(self) -> float:
        """Capacitance the control signal must drive for this circuit."""
        return self.tech.precharge_gate_cap

    def reset_statistics(self) -> None:
        self.activity.reset()
