"""SRAM substrate: cells, bit lines, pre-charge circuits, periphery, memory.

The behavioural memory model in :mod:`repro.sram.memory` executes read and
write operations cycle by cycle, tracking pre-charge activity, read
equivalent stress, floating bit lines and the faulty-swap hazard, and books
every quantum of supply energy into an :class:`repro.power.EnergyLedger`.
It is the measurement instrument on which the paper's experiments run.
"""

from .geometry import ArrayGeometry, PAPER_GEOMETRY, SMALL_GEOMETRY
from .cell import CellError, CellFactory, CellStressStatistics, SixTransistorCell
from .bitline import BitLineError, BitLinePair, RestorationResult
from .precharge import PrechargeActivity, PrechargeCircuit, PrechargeError
from .timing import ClockCycle, CyclePhase, TestClock
from .periphery import (
    ColumnDecoder,
    DecoderError,
    RowDecoder,
    SenseAmplifier,
    WriteDriver,
)
from .column import Column, ColumnError, FloatingContext
from .array import (
    ArrayError,
    BackgroundFunction,
    CellArray,
    checkerboard_background,
    column_stripe_background,
    row_stripe_background,
    solid_background,
)
from .memory import (
    AccessOutcome,
    FUNCTIONAL_PLAN,
    MemoryError_,
    OperatingMode,
    PrechargePlan,
    SRAM,
    StressCounters,
)

__all__ = [
    "ArrayGeometry", "PAPER_GEOMETRY", "SMALL_GEOMETRY",
    "CellError", "CellFactory", "CellStressStatistics", "SixTransistorCell",
    "BitLineError", "BitLinePair", "RestorationResult",
    "PrechargeActivity", "PrechargeCircuit", "PrechargeError",
    "ClockCycle", "CyclePhase", "TestClock",
    "ColumnDecoder", "DecoderError", "RowDecoder", "SenseAmplifier", "WriteDriver",
    "Column", "ColumnError", "FloatingContext",
    "ArrayError", "BackgroundFunction", "CellArray",
    "checkerboard_background", "column_stripe_background",
    "row_stripe_background", "solid_background",
    "AccessOutcome", "FUNCTIONAL_PLAN", "MemoryError_", "OperatingMode",
    "PrechargePlan", "SRAM", "StressCounters",
]
