"""Union shard journals into one verified merged record set.

A distributed campaign (:mod:`repro.distrib`) — or a hand-sharded one
(``--shard I/N``) — leaves one fsync'd journal per worker/lease.  This
module is the back half of that story: ``merge_journals`` unions any
number of shard journals into a single journal-format artifact whose
entries are *verified*, not merely concatenated:

* every record is keyed by its case fingerprint digest
  (:func:`repro.sweep.runner.fingerprint_digest`) — the same content
  address the serving cache uses — so identity is the scenario itself,
  never a shard-local index;
* shard-local case indices are rebased to campaign-global positions via
  the ``case_indices`` list an orchestrator stamps into each journal's
  header (identity mapping when absent, for hand-run shards of one
  grid);
* duplicate measurements of one case (the work-stealing overlap shape:
  a stolen lease's old and new generation both journal the case) must
  agree **bit-identically on every field except** ``elapsed_s`` — wall
  clock is environment, everything else is physics; any other
  disagreement is a :class:`MergeError`, never a silent pick;
* against a campaign grid, every entry's fingerprint must equal the
  grid's fingerprint at its global index, entries outside the grid are
  errors, and ``require_complete=True`` additionally demands every grid
  case be present.

The merged artifact is itself a valid run journal (header line + one
entry per case in grid order, written atomically via
:mod:`repro.durable`), so every existing journal consumer — ``--resume``,
:func:`load_journal`, analysis notebooks — reads it unchanged.

Command line::

    python -m repro.sweep merge merged.jsonl shard1.jsonl shard2.jsonl \\
        [--grid grid.jsonl] [--require-complete] [--quiet]
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..durable import atomic_write_text
from .journal import (
    JOURNAL_HEADER_FORMAT,
    JOURNAL_VERSION,
    JournalEntry,
    JournalError,
    RunJournal,
)
from .runner import _RECORD_KINDS, SweepError, fingerprint_digest

__all__ = [
    "MergeError",
    "MergeReport",
    "load_grid_fingerprints",
    "merge_journals",
    "merge_main",
]


class MergeError(SweepError):
    """Raised when shard journals conflict or fail grid verification."""


#: Record fields excluded from the duplicate-identity comparison: wall
#: clock varies per execution environment, every other field is a
#: deterministic function of the scenario and must agree exactly.
_ENVIRONMENT_FIELDS = ("elapsed_s",)


@dataclass
class MergeReport:
    """What one merge did: provenance for logs, tests and CI assertions."""

    output: Path
    cases: int                      #: distinct cases in the merged artifact
    duplicates: int                 #: extra recordings dropped (identical)
    sources: List[Path] = field(default_factory=list)
    complete: Optional[bool] = None  #: vs the grid; None without a grid

    def summary(self) -> str:
        """One human line for CLI output."""
        parts = [f"{self.cases} cases from {len(self.sources)} journal(s)"]
        if self.duplicates:
            parts.append(f"{self.duplicates} duplicate recording(s) "
                         "verified identical")
        if self.complete is not None:
            parts.append("grid complete" if self.complete
                         else "grid incomplete")
        return f"merged {', '.join(parts)} -> {self.output}"


def load_grid_fingerprints(path: Union[str, Path]
                           ) -> List[Dict[str, object]]:
    """Read a grid file: one case fingerprint JSON object per line.

    This is the ``grid.jsonl`` a :mod:`repro.distrib` campaign publishes,
    but any JSONL file of fingerprints works.
    """
    grid_path = Path(path)
    try:
        text = grid_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise MergeError(f"cannot read grid {grid_path}: {exc}") from exc
    fingerprints: List[Dict[str, object]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            fingerprint = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MergeError(
                f"grid {grid_path} line {lineno} is not valid JSON: "
                f"{exc}") from exc
        if not isinstance(fingerprint, dict):
            raise MergeError(
                f"grid {grid_path} line {lineno} is not a case "
                "fingerprint object")
        fingerprints.append(fingerprint)
    if not fingerprints:
        raise MergeError(f"grid {grid_path} holds no case fingerprints")
    return fingerprints


def _comparable_record(record: Dict[str, object]) -> Dict[str, object]:
    """The record with environment-only fields stripped for comparison."""
    return {key: value for key, value in record.items()
            if key not in _ENVIRONMENT_FIELDS}


def _global_index(entry: JournalEntry, mapping: Optional[List[int]],
                  source: Path) -> int:
    """Rebase a shard-local case index to its campaign-global position."""
    if mapping is None:
        return entry.case_index
    if not 0 <= entry.case_index < len(mapping):
        raise MergeError(
            f"{source} records case index {entry.case_index}, outside its "
            f"header's {len(mapping)}-entry case_indices map")
    return mapping[entry.case_index]


def _header_mapping(journal: RunJournal) -> Optional[List[int]]:
    """The journal header's local-to-global ``case_indices`` map, if any."""
    meta = journal.read_header()
    if not meta:
        return None
    indices = meta.get("case_indices")
    if indices is None:
        return None
    if not isinstance(indices, list) or \
            not all(isinstance(index, int) for index in indices):
        raise MergeError(
            f"{journal.path} header case_indices is not a list of "
            "integers")
    return list(indices)


def merge_journals(output: Union[str, Path],
                   journal_paths: Sequence[Union[str, Path]],
                   grid: Optional[Sequence[Dict[str, object]]] = None,
                   require_complete: bool = False) -> MergeReport:
    """Merge shard journals into one verified journal at ``output``.

    See the module docstring for the verification contract.  Raises
    :class:`MergeError` on any conflict, :class:`JournalError` on a
    corrupt or foreign source journal.  The output write is atomic — an
    interrupted merge leaves either the previous artifact or the new
    one, never a torn hybrid.
    """
    if not journal_paths:
        raise MergeError("merge needs at least one source journal")
    if require_complete and grid is None:
        raise MergeError("require_complete needs the campaign grid")
    grid_digests: Optional[Dict[str, int]] = None
    if grid is not None:
        grid_digests = {}
        for index, fingerprint in enumerate(grid):
            digest = fingerprint_digest(fingerprint)
            if digest in grid_digests:
                raise MergeError(
                    f"grid positions {grid_digests[digest]} and {index} "
                    "hold the same case; a campaign grid must be "
                    "duplicate-free to merge against")
            grid_digests[digest] = index

    # digest -> (global index, entry, source path) of the kept recording
    merged: Dict[str, Tuple[int, JournalEntry, Path]] = {}
    duplicates = 0
    sources = [Path(path) for path in journal_paths]
    for source in sources:
        journal = RunJournal(source)
        mapping = _header_mapping(journal)
        for entry in journal.load():
            record_cls = _RECORD_KINDS.get(entry.kind)
            if record_cls is None:
                raise MergeError(
                    f"{source} contains unknown record kind "
                    f"{entry.kind!r}")
            record_cls.from_dict(entry.record)  # validate the schema
            digest = fingerprint_digest(entry.case)
            index = _global_index(entry, mapping, source)
            if grid_digests is not None:
                expected = grid_digests.get(digest)
                if expected is None:
                    raise MergeError(
                        f"{source} records a case that is not in the "
                        f"campaign grid (digest {digest[:12]}..., shard "
                        f"index {entry.case_index})")
                if expected != index:
                    raise MergeError(
                        f"{source} places case {digest[:12]}... at grid "
                        f"position {index}, but the grid holds it at "
                        f"{expected}")
            if digest not in merged:
                merged[digest] = (index, entry, source)
                continue
            kept_index, kept_entry, kept_source = merged[digest]
            if kept_index != index:
                raise MergeError(
                    f"case {digest[:12]}... appears at global index "
                    f"{kept_index} in {kept_source} but {index} in "
                    f"{source}; the shards disagree about the grid")
            if kept_entry.kind != entry.kind or \
                    _comparable_record(kept_entry.record) != \
                    _comparable_record(entry.record):
                raise MergeError(
                    f"conflicting records for case {digest[:12]}... "
                    f"(global index {index}): {kept_source} and {source} "
                    "measured different results; refusing to merge — "
                    "duplicate recordings must be identical apart from "
                    f"{_ENVIRONMENT_FIELDS}")
            duplicates += 1  # identical re-measurement: keep the first

    complete: Optional[bool] = None
    if grid_digests is not None:
        missing = sorted(index for digest, index in grid_digests.items()
                         if digest not in merged)
        complete = not missing
        if require_complete and missing:
            preview = ", ".join(str(index) for index in missing[:8])
            more = "..." if len(missing) > 8 else ""
            raise MergeError(
                f"merged journals cover {len(merged)} of "
                f"{len(grid_digests)} grid cases; missing indices: "
                f"{preview}{more}")

    ordered = sorted(merged.values(), key=lambda item: item[0])
    lines = [json.dumps({
        "format": JOURNAL_HEADER_FORMAT,
        "version": JOURNAL_VERSION,
        "meta": {
            "merged_from": [str(path) for path in sources],
            "cases": len(ordered),
            "duplicates": duplicates,
            "verified_against_grid": grid is not None,
            "grid_complete": complete,
        },
    }, sort_keys=True)]
    for index, entry, _ in ordered:
        lines.append(JournalEntry(
            case_index=index, kind=entry.kind,
            case=entry.case, record=entry.record).to_line())
    output_path = Path(output)
    atomic_write_text(output_path, "\n".join(lines) + "\n")
    return MergeReport(output=output_path, cases=len(ordered),
                       duplicates=duplicates, sources=sources,
                       complete=complete)


def merge_main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.sweep merge`` entry point (exit 0 ok, 2 error)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep merge",
        description="Union shard journals into one verified merged "
                    "journal (duplicates must be identical, conflicts "
                    "are errors).")
    parser.add_argument("output", help="path of the merged journal to write")
    parser.add_argument("journals", nargs="+",
                        help="source shard journals to merge")
    parser.add_argument("--grid", metavar="PATH",
                        help="verify entries against this grid file "
                             "(one case fingerprint JSON object per line)")
    parser.add_argument("--require-complete", action="store_true",
                        help="fail unless every grid case is present "
                             "(needs --grid)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)
    try:
        grid = load_grid_fingerprints(args.grid) if args.grid else None
        if args.require_complete and grid is None:
            raise MergeError("--require-complete needs --grid PATH")
        report = merge_journals(args.output, args.journals, grid=grid,
                                require_complete=args.require_complete)
    except (MergeError, JournalError, SweepError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(report.summary())
    return 0
