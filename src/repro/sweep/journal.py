"""Append-only JSONL run journal for sweep campaigns.

A long campaign (hundreds of paper-scale scenarios fanned out over worker
processes) must survive interruption: the :class:`RunJournal` records one
line per *completed* case — kind-tagged, carrying both the case
description and the full measurement record — flushed and fsync'd before
the orchestrator moves on, so a killed run loses at most the cases that
were still in flight.  ``SweepRunner(..., journal=path).run(resume=True)``
reloads the journal, restores the already-measured records verbatim
(including their original ``elapsed_s``), and re-executes only the missing
cases.

The format is deliberately self-describing and analyzable with nothing but
a JSONL reader: every line is an independent JSON object ::

    {"format": "repro-sweep-journal", "version": 1, "case_index": 3,
     "kind": "prr", "case": {...}, "record": {...}}

``case`` is the flattened scenario description (the resume fingerprint —
a journal only resumes the exact grid it was written for), ``record`` the
same flat dictionary the JSON/CSV exports carry.  This module stays
generic over plain dictionaries; :mod:`repro.sweep.runner` owns the
mapping between entries and its case/record dataclasses.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union


class JournalError(Exception):
    """Raised on malformed or foreign journal files."""


#: The ``format`` tag every journal line carries.
JOURNAL_FORMAT = "repro-sweep-journal"
#: The ``format`` tag of the optional first-line header (run metadata:
#: the execution strategy actually used, grid size, ...).  Loaders skip
#: header lines when collecting entries, so journals with and without a
#: header resume identically.
JOURNAL_HEADER_FORMAT = "repro-sweep-journal-header"
#: The journal schema version this module writes.
JOURNAL_VERSION = 1

#: How every entry line this module writes begins (:meth:`JournalEntry.to_line`
#: serialises with ``sort_keys``, so ``"case"`` is always the first key).
#: A torn final write cut at *any* byte is prefix-consistent with this,
#: which is how it is told apart from a foreign file.
_LINE_PREFIX = '{"case"'
#: How a header line begins (``sort_keys`` puts ``"format"`` first).
_HEADER_PREFIX = f'{{"format": "{JOURNAL_HEADER_FORMAT}"'


def _looks_torn(fragment: str) -> bool:
    """True when a decode-failing tail is a plausible torn journal line."""
    for prefix in (_LINE_PREFIX, _HEADER_PREFIX):
        head = fragment[:len(prefix)]
        if head == prefix or prefix.startswith(head):
            return True
    return False


def _is_header_line(line: str) -> bool:
    """True when ``line`` is a journal header (never an entry)."""
    return line.lstrip().startswith(_HEADER_PREFIX)


@dataclass(frozen=True)
class JournalEntry:
    """One completed case as recorded in (or loaded from) a journal.

    ``case_index`` is the case's position in the (possibly sharded) case
    list handed to the runner; ``kind`` the record kind tag
    (``"power"`` / ``"coverage"`` / ``"prr"``); ``case`` and ``record``
    the flat dictionary forms of the scenario and its measurements.
    """

    case_index: int
    kind: str
    case: Dict[str, object]
    record: Dict[str, object]

    def to_line(self) -> str:
        """The entry as one JSONL line (no trailing newline)."""
        return json.dumps({
            "format": JOURNAL_FORMAT,
            "version": JOURNAL_VERSION,
            "case_index": self.case_index,
            "kind": self.kind,
            "case": self.case,
            "record": self.record,
        }, sort_keys=True)

    @classmethod
    def from_line(cls, line: str, lineno: int = 0) -> "JournalEntry":
        """Parse one journal line, validating the format tag."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"journal line {lineno} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or \
                payload.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"journal line {lineno} is not a {JOURNAL_FORMAT} record")
        if payload.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal line {lineno} has version "
                f"{payload.get('version')!r}; this reader understands "
                f"version {JOURNAL_VERSION}")
        try:
            return cls(case_index=int(payload["case_index"]),
                       kind=str(payload["kind"]),
                       case=dict(payload["case"]),
                       record=dict(payload["record"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(
                f"journal line {lineno} is missing fields: {exc}") from exc


class RunJournal:
    """Append-only JSONL writer/loader for campaign run records.

    The write handle opens on :meth:`open` (the orchestrator calls it
    *before* executing any case, so an unwritable path fails while zero
    work has been done, not after the first measurement completes) or
    lazily on the first :meth:`append`, and stays open for the campaign's
    duration; every appended line is flushed and fsync'd so a ``kill -9``
    loses no completed case.  Use as a context manager or call
    :meth:`close` explicitly.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None

    # ------------------------------------------------------------------
    def open(self) -> "RunJournal":
        """Open the append handle now (probe writability up front)."""
        if self._handle is None:
            self._discard_torn_tail()
            self._handle = self.path.open("a", encoding="utf-8")
        return self

    def _discard_torn_tail(self) -> None:
        """Physically drop a torn (newline-less) final line before appending.

        Appending straight after a torn tail would merge the new entry
        into the fragment, producing one complete-but-corrupt line that
        poisons every later :meth:`load`.  The loader already ignores the
        fragment, so truncating it loses nothing — the interrupted case
        re-runs either way.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        cut = data.rfind(b"\n") + 1  # 0 when the file is a single fragment
        with self.path.open("rb+") as handle:
            handle.truncate(cut)

    def append(self, entry: JournalEntry) -> None:
        """Durably append one completed case (flush + fsync per line)."""
        self.open()
        self._handle.write(entry.to_line() + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def write_header(self, meta: Dict[str, object]) -> None:
        """Durably write the run-metadata header line.

        Meant for the very start of a fresh journal (the orchestrator
        writes it right after probing writability); carries free-form run
        metadata such as the execution strategy that actually ran.
        Loaders skip it when collecting entries, so resume semantics are
        unchanged.
        """
        self.open()
        self._handle.write(json.dumps({
            "format": JOURNAL_HEADER_FORMAT,
            "version": JOURNAL_VERSION,
            "meta": meta,
        }, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def read_header(self) -> Optional[Dict[str, object]]:
        """The ``meta`` of the journal's header line, or ``None``.

        Scans only the leading lines (headers are written before any
        entry); a malformed *complete* header — bad JSON, or a header
        schema version this reader does not understand — raises
        :class:`JournalError` like any other corrupt line would on
        :meth:`load`.  A torn, newline-less header fragment — the
        artifact of a kill during the very first header write — is "no
        header yet", matching the torn-tail tolerance of :meth:`load` and
        :meth:`open`: all three entry points agree that such a journal is
        empty and restartable.
        """
        if not self.path.exists():
            return None
        text = self.path.read_text(encoding="utf-8")
        lines = text.split("\n")
        complete = lines[:-1]          # every line closed by a newline
        torn_tail = lines[-1]          # "" when the file ends in a newline
        for line in complete:
            if not line.strip():
                continue
            if not _is_header_line(line):
                return None
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JournalError(
                    f"journal header is not valid JSON: {exc}") from exc
            if payload.get("version") != JOURNAL_VERSION:
                raise JournalError(
                    f"journal header has version "
                    f"{payload.get('version')!r}; this reader understands "
                    f"version {JOURNAL_VERSION}")
            return dict(payload.get("meta") or {})
        if torn_tail.strip() and not _looks_torn(torn_tail):
            # A newline-less fragment that could not be the start of a
            # header or entry line is foreign content, not a torn write.
            raise JournalError(
                f"journal {self.path} holds unrecognised content; "
                "is it a repro-sweep journal?")
        return None

    def close(self) -> None:
        """Close the underlying file (no-op when nothing was appended)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def load(self) -> List[JournalEntry]:
        """Every entry of the journal file, in append order.

        A missing file is an empty journal (a resumed campaign that never
        completed a case).  Blank lines are tolerated; anything else that
        does not parse raises :class:`JournalError` — a corrupt journal
        must fail loudly, not silently re-execute or skip cases.  The one
        exception is a torn *final* line of an otherwise valid journal
        (an unparseable JSON prefix without a trailing newline, the
        classic kill-mid-write artifact), which is dropped so the case
        simply re-runs; a file whose *only* content fails to parse is a
        foreign or corrupt file and raises.
        """
        if not self.path.exists():
            return []
        entries: List[JournalEntry] = []
        text = self.path.read_text(encoding="utf-8")
        lines = text.split("\n")
        complete = lines[:-1]          # every line closed by a newline
        torn_tail = lines[-1]          # "" when the file ends in a newline
        for lineno, line in enumerate(complete, start=1):
            if not line.strip():
                continue
            if _is_header_line(line):
                continue  # run metadata, not a completed case
            entries.append(JournalEntry.from_line(line, lineno=lineno))
        if torn_tail.strip():
            try:
                entries.append(JournalEntry.from_line(
                    torn_tail, lineno=len(lines)))
            except JournalError as exc:
                # Drop only a genuinely torn final write: a JSON *decode*
                # failure at the end of a journal that already holds valid
                # entries, or — for a kill during the very first append —
                # a fragment that is byte-wise the start of a journal
                # line.  A decodable-but-foreign tail, or unrecognisable
                # content with no valid entry, is not a torn journal.
                torn = isinstance(exc.__cause__, json.JSONDecodeError)
                if not (torn and (entries or _looks_torn(torn_tail))):
                    raise
        return entries

    def latest_by_index(self) -> Dict[int, JournalEntry]:
        """The last entry per case index (re-runs append; last one wins)."""
        latest: Dict[int, JournalEntry] = {}
        for entry in self.load():
            latest[entry.case_index] = entry
        return latest


def load_journal(path: Union[str, Path]) -> List[JournalEntry]:
    """Convenience wrapper: every entry of the journal at ``path``."""
    return RunJournal(path).load()
