"""Paper-scale sweep runner: batch grids of test-power scenarios.

* :mod:`repro.sweep.runner` — :class:`SweepRunner` and friends: grid
  construction, multiprocessing fan-out, JSON/CSV export;
* :mod:`repro.sweep.__main__` — the ``python -m repro.sweep`` command line.

Quickstart::

    from repro.sweep import SweepRunner, sweep_grid

    cases = sweep_grid(["64x64", "512x512"], ["March C-", "MATS+"])
    result = SweepRunner(cases, processes=4).run()
    print(result.render())
    result.to_csv("sweep.csv")
"""

from .runner import (
    SweepCase,
    SweepError,
    SweepRecord,
    SweepResult,
    SweepRunner,
    paper_table1_cases,
    parse_geometry,
    run_case,
    sweep_grid,
)

__all__ = [
    "SweepCase",
    "SweepError",
    "SweepRecord",
    "SweepResult",
    "SweepRunner",
    "paper_table1_cases",
    "parse_geometry",
    "run_case",
    "sweep_grid",
]
