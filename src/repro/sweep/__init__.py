"""Paper-scale sweep runner: batch grids of measurement scenarios.

* :mod:`repro.sweep.runner` — :class:`SweepRunner` and friends: grid
  construction (test-power scenarios *and* fault-coverage campaigns),
  multiprocessing fan-out, JSON/CSV export;
* :mod:`repro.sweep.__main__` — the ``python -m repro.sweep`` command line.

Quickstart::

    from repro.sweep import SweepRunner, coverage_grid, sweep_grid

    cases = sweep_grid(["64x64", "512x512"], ["March C-", "MATS+"])
    cases += coverage_grid(["64x64"], ["March C-"])
    result = SweepRunner(cases, processes=4).run()
    print(result.render())
    result.to_json("sweep.json")
"""

from .runner import (
    CoverageCase,
    CoverageRecord,
    INVARIANCE_ORDERS,
    PRR_BRACKET_SLACK,
    PrrCase,
    PrrRecord,
    SweepCase,
    SweepError,
    SweepRecord,
    SweepResult,
    SweepRunner,
    coverage_grid,
    execute_case,
    paper_coverage_cases,
    paper_prr_cases,
    paper_table1_cases,
    parse_geometry,
    prr_grid,
    run_case,
    run_coverage_case,
    run_prr_case,
    sweep_grid,
)

__all__ = [
    "CoverageCase",
    "CoverageRecord",
    "INVARIANCE_ORDERS",
    "PRR_BRACKET_SLACK",
    "PrrCase",
    "PrrRecord",
    "SweepCase",
    "SweepError",
    "SweepRecord",
    "SweepResult",
    "SweepRunner",
    "coverage_grid",
    "execute_case",
    "paper_coverage_cases",
    "paper_prr_cases",
    "paper_table1_cases",
    "parse_geometry",
    "prr_grid",
    "run_case",
    "run_coverage_case",
    "run_prr_case",
    "sweep_grid",
]
