"""Paper-scale sweep runner: batch grids of measurement scenarios.

* :mod:`repro.sweep.runner` — :class:`SweepRunner` and friends: grid
  construction (test-power scenarios *and* fault-coverage campaigns),
  streaming multiprocessing fan-out with pre-warmed workers, deterministic
  sharding, JSON/CSV export;
* :mod:`repro.sweep.journal` — the append-only JSONL run journal that
  makes long campaigns durable and resumable;
* :mod:`repro.sweep.__main__` — the ``python -m repro.sweep`` command line.

Quickstart::

    from repro.sweep import SweepRunner, coverage_grid, sweep_grid

    cases = sweep_grid(["64x64", "512x512"], ["March C-", "MATS+"])
    cases += coverage_grid(["64x64"], ["March C-"])
    result = SweepRunner(cases, journal="sweep.jsonl").run(progress=True)
    print(result.render())
    result.to_json("sweep.json")

An interrupted campaign resumes with ``run(resume=True)`` (re-executing
only the cases missing from the journal), and a grid splits across
machines with ``shard_cases(cases, index, total)``.
"""

from .journal import JournalEntry, JournalError, RunJournal, load_journal
from .merge import (
    MergeError,
    MergeReport,
    load_grid_fingerprints,
    merge_journals,
)
from .runner import (
    CoverageCase,
    CoverageRecord,
    DEFAULT_SAMPLE,
    INVARIANCE_ORDERS,
    PRR_BRACKET_SLACK,
    PrrCase,
    PrrRecord,
    SweepCase,
    SweepError,
    SweepRecord,
    SweepResult,
    SweepRunner,
    case_fingerprint,
    case_from_dict,
    case_kind,
    coverage_grid,
    execute_case,
    fingerprint_digest,
    paper_coverage_cases,
    paper_prr_cases,
    paper_table1_cases,
    parse_geometry,
    prr_grid,
    run_case,
    run_coverage_case,
    run_prr_case,
    shard_cases,
    sweep_grid,
)

__all__ = [
    "JournalEntry",
    "JournalError",
    "MergeError",
    "MergeReport",
    "RunJournal",
    "load_grid_fingerprints",
    "load_journal",
    "merge_journals",
    "CoverageCase",
    "CoverageRecord",
    "DEFAULT_SAMPLE",
    "INVARIANCE_ORDERS",
    "PRR_BRACKET_SLACK",
    "PrrCase",
    "PrrRecord",
    "SweepCase",
    "SweepError",
    "SweepRecord",
    "SweepResult",
    "SweepRunner",
    "case_fingerprint",
    "case_from_dict",
    "case_kind",
    "coverage_grid",
    "execute_case",
    "fingerprint_digest",
    "paper_coverage_cases",
    "paper_prr_cases",
    "paper_table1_cases",
    "parse_geometry",
    "prr_grid",
    "run_case",
    "run_coverage_case",
    "run_prr_case",
    "shard_cases",
    "sweep_grid",
]
