"""Batch execution of scenario grids (the paper-scale sweeps).

A sweep batch-executes a grid of scenarios with optional multiprocessing
fan-out across scenarios and JSON/CSV export of the results.  Two scenario
kinds exist, both plain picklable descriptions:

* :class:`SweepCase` — one *(geometry x algorithm x address-order x
  backend)* test-power measurement: a full functional-vs-low-power-test-
  mode comparison (the paper's Table 1).  ``python -m repro.sweep --paper``
  runs the full 512 x 512 measured Table 1 in seconds.
* :class:`CoverageCase` — one *(geometry x algorithm x order-set)* fault-
  coverage campaign: the standard fault battery simulated under several
  address orders with per-fault invariance checking (the paper's Section 3
  DOF-1 argument).  ``python -m repro.sweep --paper-coverage`` runs the
  full 512 x 512 DOF-1 invariance check in seconds on the vectorized
  campaign engine.
* :class:`PrrCase` — one *(geometry x algorithm x backend)* BIST power
  campaign: both operating modes measured through the backend-pluggable
  :class:`repro.bist.BistController`, the measured Power Reduction Ratio
  differenced against the Section 5 analytical model and its extended
  (bracketing) variant.  ``python -m repro.sweep --paper-table1`` runs the
  full measured 512 x 512 Table 1 in seconds on the vectorized power
  campaign.

Design notes:

* cases carry only names and numbers (no live objects), so they travel
  cheaply to worker processes and round-trip through JSON;
* :func:`run_case` / :func:`run_coverage_case` are module-level functions —
  :func:`execute_case` dispatches on the case type and is the unit of work
  a ``multiprocessing.Pool`` maps over;
* a :class:`SweepResult` holds one record per scenario and renders through
  :func:`repro.analysis.tables.render_table`, so sweep output matches the
  benchmark tables.  Campaign records carry the victim-sampling ``seed``,
  so an exported campaign is reproducible from its JSON/CSV alone.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.tables import render_table
from ..bist import BistController, POWER_BACKENDS
from ..core.prr import AnalyticalPowerModel
from ..core.session import BACKENDS, TestSession
from ..faults import (
    DEFAULT_LOCATION_SEED,
    FAULT_BACKENDS,
    FaultSimulator,
    build_fault_list,
    default_fault_locations,
    run_campaign,
)
from ..march.element import AddressingDirection
from ..march.library import PAPER_TABLE1_ALGORITHMS, get_algorithm
from ..march.ordering import ORDER_REGISTRY, make_order
from ..sram.geometry import ArrayGeometry


class SweepError(Exception):
    """Raised on malformed sweep specifications."""


GeometryLike = Union[ArrayGeometry, Tuple[int, int], Tuple[int, int, int], str]


def parse_geometry(spec: GeometryLike) -> ArrayGeometry:
    """Coerce a geometry specification into an :class:`ArrayGeometry`.

    Accepts an :class:`ArrayGeometry`, a ``(rows, columns)`` or
    ``(rows, columns, bits_per_word)`` tuple, or a string like ``"512x512"``
    / ``"64x64x4"`` (the CLI form).
    """
    if isinstance(spec, ArrayGeometry):
        return spec
    if isinstance(spec, str):
        parts = spec.lower().replace("×", "x").split("x")
        if len(parts) not in (2, 3):
            raise SweepError(
                f"geometry {spec!r} must look like ROWSxCOLS or ROWSxCOLSxBITS")
        try:
            numbers = [int(part) for part in parts]
        except ValueError as exc:
            raise SweepError(f"geometry {spec!r} has non-integer fields") from exc
        return ArrayGeometry(*numbers)
    return ArrayGeometry(*spec)


@dataclass(frozen=True)
class SweepCase:
    """One scenario of a sweep grid (picklable, JSON-friendly).

    Everything is carried by name or plain number so the case can be sent
    to a worker process and rebuilt there: the algorithm resolves through
    :func:`repro.march.get_algorithm`, the order through
    :func:`repro.march.ordering.make_order`.
    """

    rows: int
    columns: int
    algorithm: str
    bits_per_word: int = 1
    order: str = "row-major"
    any_direction: str = "up"
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.order not in ORDER_REGISTRY:
            raise SweepError(
                f"unknown address order {self.order!r}; "
                f"available: {sorted(ORDER_REGISTRY)}")
        if self.backend not in BACKENDS:
            raise SweepError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}")
        get_algorithm(self.algorithm)  # fail fast on unknown names

    def geometry(self) -> ArrayGeometry:
        """The array geometry this case runs on."""
        return ArrayGeometry(rows=self.rows, columns=self.columns,
                             bits_per_word=self.bits_per_word)

    def label(self) -> str:
        """Short human-readable scenario label used in logs and tables."""
        geometry = f"{self.rows}x{self.columns}"
        if self.bits_per_word != 1:
            geometry += f"x{self.bits_per_word}"
        return f"{self.algorithm} @ {geometry} [{self.order}, {self.backend}]"


@dataclass
class SweepRecord:
    """The measurements of one executed :class:`SweepCase`."""

    rows: int
    columns: int
    bits_per_word: int
    algorithm: str
    order: str
    any_direction: str
    backend: str            # requested backend
    backend_used: str       # engine that actually ran ("vectorized"/"reference")
    cycles_per_mode: int
    functional_power_w: float
    low_power_power_w: float
    measured_prr: float
    analytical_prr: float   # the paper's Section 5 equation
    analytical_prr_recharge: float  # + the next-column recharge term
    passed: bool            # no read mismatch in either mode
    elapsed_s: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (the JSON/CSV row)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepRecord":
        """Rebuild a record from :meth:`as_dict` output (JSON/CSV import)."""
        return _record_from_dict(cls, data)

    def table_row(self) -> Dict[str, object]:
        """One row of the sweep report table."""
        geometry = f"{self.rows}x{self.columns}"
        if self.bits_per_word != 1:
            geometry += f"x{self.bits_per_word}"
        return {
            "Algorithm": self.algorithm,
            "Geometry": geometry,
            "Order": self.order,
            "Backend": self.backend_used,
            "PRR measured": f"{100.0 * self.measured_prr:.1f} %",
            "PRR analytical": f"{100.0 * self.analytical_prr:.1f} %",
            "PRR analytical (+recharge)": f"{100.0 * self.analytical_prr_recharge:.1f} %",
            "P_F (mW)": f"{self.functional_power_w * 1e3:.3f}",
            "P_LPT (mW)": f"{self.low_power_power_w * 1e3:.3f}",
            "Cycles/mode": self.cycles_per_mode,
            "Runtime (s)": f"{self.elapsed_s:.2f}",
        }

    def progress_line(self) -> str:
        """One-line status printed per completed scenario."""
        return (f"{self.algorithm} @ {self.rows}x{self.columns} [{self.order}]: "
                f"PRR {100.0 * self.measured_prr:.1f} % "
                f"({self.elapsed_s:.2f} s, {self.backend_used})")


def run_case(case: SweepCase) -> SweepRecord:
    """Execute one scenario: both modes, measured and analytical PRR.

    This is the multiprocessing work unit.  A requested ``"vectorized"`` or
    ``"auto"`` backend first tries the batch engine; ``"auto"`` falls back
    to the reference engine for configurations the engine rejects, and the
    record's ``backend_used`` reports which engine actually ran.
    """
    from ..engine import EngineError  # deferred: numpy optional

    geometry = case.geometry()
    algorithm = get_algorithm(case.algorithm)
    order = make_order(case.order, geometry)
    any_direction = AddressingDirection(case.any_direction)
    session = TestSession(geometry, order=order, any_direction=any_direction,
                          detailed=False)

    started = time.perf_counter()
    backend_used = "reference"
    if case.backend in ("vectorized", "auto"):
        try:
            comparison = session.compare_modes(algorithm, backend="vectorized")
            backend_used = "vectorized"
        except EngineError:
            # Unsupported scenario or numpy unavailable: "auto" falls back.
            if case.backend == "vectorized":
                raise
            comparison = session.compare_modes(algorithm, backend="reference")
    else:
        comparison = session.compare_modes(algorithm, backend="reference")
    elapsed = time.perf_counter() - started

    analytical = AnalyticalPowerModel(geometry)
    prediction = analytical.predict(algorithm)
    prediction_recharge = analytical.predict(
        algorithm, include_secondary=True, include_next_column_recharge=True)

    return SweepRecord(
        rows=case.rows,
        columns=case.columns,
        bits_per_word=case.bits_per_word,
        algorithm=algorithm.name,
        order=case.order,
        any_direction=case.any_direction,
        backend=case.backend,
        backend_used=backend_used,
        cycles_per_mode=comparison.functional.cycles,
        functional_power_w=comparison.functional.average_power,
        low_power_power_w=comparison.low_power.average_power,
        measured_prr=comparison.prr,
        analytical_prr=prediction.prr,
        analytical_prr_recharge=prediction_recharge.prr,
        passed=comparison.functional.passed and comparison.low_power.passed,
        elapsed_s=elapsed,
    )


# ----------------------------------------------------------------------
# Fault-coverage campaign cases (the DOF-1 sweeps)
# ----------------------------------------------------------------------
#: The representative DOF-1 order set: the paper's word-line order, the
#: legacy fast-row order, and an arbitrary permutation.
INVARIANCE_ORDERS: Tuple[str, ...] = ("row-major", "column-major", "pseudo-random")


@dataclass(frozen=True)
class CoverageCase:
    """One fault-coverage campaign scenario (picklable, JSON-friendly).

    The standard fault battery (single-cell and/or coupling) is placed at
    a deterministic victim spread — corners, centre, plus ``sample``
    pseudo-random cells drawn from ``seed`` — and simulated under every
    order in ``orders``; the per-fault verdicts are compared across orders
    (the paper's Section 3 DOF-1 invariance).  ``backend`` selects the
    fault-simulation engine (:data:`repro.faults.FAULT_BACKENDS`).
    """

    rows: int
    columns: int
    algorithm: str
    orders: Tuple[str, ...] = INVARIANCE_ORDERS
    any_direction: str = "up"
    backend: str = "auto"
    include_single: bool = True
    include_coupling: bool = True
    sample: int = 6
    seed: int = DEFAULT_LOCATION_SEED

    def __post_init__(self) -> None:
        object.__setattr__(self, "orders", tuple(self.orders))
        if not self.orders:
            raise SweepError("a coverage case needs at least one address order")
        for order in self.orders:
            if order not in ORDER_REGISTRY:
                raise SweepError(
                    f"unknown address order {order!r}; "
                    f"available: {sorted(ORDER_REGISTRY)}")
        if self.backend not in FAULT_BACKENDS:
            raise SweepError(
                f"unknown backend {self.backend!r}; expected one of {FAULT_BACKENDS}")
        if not (self.include_single or self.include_coupling):
            raise SweepError("a coverage case needs at least one fault battery")
        get_algorithm(self.algorithm)  # fail fast on unknown names

    def geometry(self) -> ArrayGeometry:
        """The (bit-oriented) array geometry this campaign runs on."""
        return ArrayGeometry(rows=self.rows, columns=self.columns)

    def label(self) -> str:
        """Short human-readable scenario label used in logs and tables."""
        return (f"{self.algorithm} coverage @ {self.rows}x{self.columns} "
                f"[{len(self.orders)} orders, {self.backend}]")


@dataclass
class CoverageRecord:
    """The measurements of one executed :class:`CoverageCase`.

    ``seed`` and ``sample`` are recorded so the exported JSON/CSV alone
    reproduces the exact victim set of the campaign; ``orders`` is the
    ``"+"``-joined order list (flat for CSV).
    """

    rows: int
    columns: int
    algorithm: str
    orders: str
    any_direction: str
    backend: str            # requested backend
    backend_used: str       # engine that actually ran ("vectorized"/"reference")
    seed: int
    sample: int
    locations: int          # victim locations in the campaign
    total_faults: int
    detected_faults: int    # under the first order
    coverage: float
    invariant: bool         # per-fault detection identical across orders
    disagreements: int
    elapsed_s: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (the JSON/CSV row)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CoverageRecord":
        """Rebuild a record from :meth:`as_dict` output (JSON/CSV import)."""
        return _record_from_dict(cls, data)

    def table_row(self) -> Dict[str, object]:
        """One row of the sweep report table."""
        return {
            "Algorithm": self.algorithm,
            "Geometry": f"{self.rows}x{self.columns}",
            "Orders": self.orders,
            "Backend": self.backend_used,
            "Faults": self.total_faults,
            "Coverage": f"{100.0 * self.coverage:.1f} %",
            "DOF-1 invariant": "yes" if self.invariant else
                               f"NO ({self.disagreements})",
            "Seed": self.seed,
            "Runtime (s)": f"{self.elapsed_s:.2f}",
        }

    def progress_line(self) -> str:
        """One-line status printed per completed scenario."""
        status = "invariant" if self.invariant else \
            f"{self.disagreements} DISAGREEMENTS"
        return (f"{self.algorithm} coverage @ {self.rows}x{self.columns}: "
                f"{100.0 * self.coverage:.1f} % of {self.total_faults} faults, "
                f"DOF-1 {status} ({self.elapsed_s:.2f} s, {self.backend_used})")


def run_coverage_case(case: CoverageCase) -> CoverageRecord:
    """Execute one coverage campaign: all orders, per-fault invariance.

    The multiprocessing work unit for coverage scenarios.  The fault list
    is simulated once per order through the backend-pluggable
    :class:`repro.faults.FaultSimulator`; coverage is reported under the
    first order and the invariance verdict compares every order pair-wise
    against it.
    """
    geometry = case.geometry()
    algorithm = get_algorithm(case.algorithm)
    orders = [make_order(name, geometry) for name in case.orders]
    locations = default_fault_locations(geometry, sample=case.sample,
                                        seed=case.seed)
    injections = build_fault_list(geometry, locations=locations,
                                  include_single=case.include_single,
                                  include_coupling=case.include_coupling)
    simulator = FaultSimulator(geometry,
                               any_direction=AddressingDirection(case.any_direction),
                               backend=case.backend)

    started = time.perf_counter()
    campaign = run_campaign(algorithm, orders, geometry, injections,
                            simulator=simulator)
    elapsed = time.perf_counter() - started

    coverage = campaign.coverage_report()
    invariance = campaign.invariance_report()
    return CoverageRecord(
        rows=case.rows,
        columns=case.columns,
        algorithm=algorithm.name,
        orders="+".join(case.orders),
        any_direction=case.any_direction,
        backend=case.backend,
        backend_used=campaign.backend_used,
        seed=case.seed,
        sample=case.sample,
        locations=len(locations),
        total_faults=coverage.total_faults,
        detected_faults=coverage.detected_faults,
        coverage=coverage.coverage,
        invariant=invariance.invariant,
        disagreements=len(invariance.disagreements),
        elapsed_s=elapsed,
    )


def coverage_grid(geometries: Iterable[GeometryLike],
                  algorithms: Iterable[str],
                  orders: Sequence[str] = INVARIANCE_ORDERS,
                  backend: str = "auto",
                  any_direction: str = "up",
                  sample: int = 6,
                  seed: int = DEFAULT_LOCATION_SEED) -> List["CoverageCase"]:
    """Build a grid of coverage campaigns: one case per geometry x algorithm."""
    cases: List[CoverageCase] = []
    for geometry_spec in geometries:
        geometry = parse_geometry(geometry_spec)
        if geometry.bits_per_word != 1:
            raise SweepError(
                "coverage campaigns model bit-oriented arrays; use "
                f"ROWSxCOLS geometries (got {geometry.describe()})")
        for algorithm in algorithms:
            cases.append(CoverageCase(
                rows=geometry.rows, columns=geometry.columns,
                algorithm=algorithm, orders=tuple(orders),
                any_direction=any_direction, backend=backend,
                sample=sample, seed=seed))
    return cases


def paper_coverage_cases(backend: str = "auto",
                         sample: int = 6,
                         seed: int = DEFAULT_LOCATION_SEED
                         ) -> List["CoverageCase"]:
    """The paper-scale DOF-1 check: the full 512 x 512 array, three orders.

    March C- carries the full single-cell + coupling battery (the fault
    classes it targets); MATS+ carries the single-cell battery only — a
    weak test may detect untargeted coupling faults merely fortuitously,
    and such fortuitous detections are legitimately order-dependent.
    """
    march_cm = CoverageCase(rows=512, columns=512, algorithm="March C-",
                            backend=backend, sample=sample, seed=seed)
    mats_plus = CoverageCase(rows=512, columns=512, algorithm="MATS+",
                             backend=backend, include_coupling=False,
                             sample=sample, seed=seed)
    return [march_cm, mats_plus]


# ----------------------------------------------------------------------
# BIST power-campaign cases (the measured-vs-analytical Table 1 sweeps)
# ----------------------------------------------------------------------
#: Slack (in PRR fraction) allowed on either side of the analytical bracket
#: when classifying a measured PRR as in-bracket: the extended model may
#: overestimate an overhead by a hair (it books a full bit-line swing for
#: the next-column recharge where the measurement sees a decayed one).
PRR_BRACKET_SLACK = 0.002


@dataclass(frozen=True)
class PrrCase:
    """One BIST power-campaign scenario (picklable, JSON-friendly).

    The algorithm runs in both operating modes through the
    backend-pluggable :class:`repro.bist.BistController` (word-line-
    sequential address generator, the paper's BIST deployment) and the
    measured Power Reduction Ratio is differenced against the Section 5
    analytical prediction and its extended bracketing variant.
    ``backend`` selects the power-measurement engine
    (:data:`repro.bist.POWER_BACKENDS`); ``seed`` is recorded verbatim in
    the exports for provenance uniformity with the campaign records (the
    PRR measurement itself is deterministic).
    """

    rows: int
    columns: int
    algorithm: str
    bits_per_word: int = 1
    backend: str = "auto"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backend not in POWER_BACKENDS:
            raise SweepError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {POWER_BACKENDS}")
        get_algorithm(self.algorithm)  # fail fast on unknown names

    def geometry(self) -> ArrayGeometry:
        """The array geometry this campaign runs on."""
        return ArrayGeometry(rows=self.rows, columns=self.columns,
                             bits_per_word=self.bits_per_word)

    def label(self) -> str:
        """Short human-readable scenario label used in logs and tables."""
        geometry = f"{self.rows}x{self.columns}"
        if self.bits_per_word != 1:
            geometry += f"x{self.bits_per_word}"
        return f"{self.algorithm} PRR @ {geometry} [{self.backend}]"


@dataclass
class PrrRecord:
    """The measurements of one executed :class:`PrrCase`.

    Carries the raw energy totals of both modes (the quantities the golden
    Table 1 regression pins), the measured PRR, and the analytical
    prediction band: ``analytical_prr`` is the paper's Section 5 equation,
    ``analytical_prr_bracket`` the extended variant (secondary overheads +
    next-column recharge) that bounds the measurement from below.
    ``backend`` / ``backend_used`` / ``seed`` make the exported JSON/CSV
    self-describing about how the numbers were produced.
    """

    rows: int
    columns: int
    bits_per_word: int
    algorithm: str
    backend: str            # requested backend
    backend_used: str       # engine that actually ran ("vectorized"/"reference")
    seed: int
    cycles_per_mode: int
    functional_energy_j: float
    low_power_energy_j: float
    functional_power_w: float
    low_power_power_w: float
    measured_prr: float
    analytical_prr: float           # the paper's Section 5 equation
    analytical_prr_bracket: float   # + secondary overheads + recharge term
    within_bracket: bool    # bracket-slack test of the measured PRR
    functional_planner: str
    low_power_planner: str
    passed: bool            # no comparator failure in either mode
    elapsed_s: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (the JSON/CSV row)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PrrRecord":
        """Rebuild a record from :meth:`as_dict` output (JSON/CSV import)."""
        return _record_from_dict(cls, data)

    def table_row(self) -> Dict[str, object]:
        """One row of the sweep report table (the Table 1 layout)."""
        algorithm = get_algorithm(self.algorithm)
        geometry = f"{self.rows}x{self.columns}"
        if self.bits_per_word != 1:
            geometry += f"x{self.bits_per_word}"
        return {
            "Algorithm": self.algorithm,
            "Geometry": geometry,
            "# elm": algorithm.element_count,
            "# oper": algorithm.operation_count,
            "PRR measured": f"{100.0 * self.measured_prr:.1f} %",
            "PRR analytical": f"{100.0 * self.analytical_prr:.1f} %",
            "PRR bracket": f"{100.0 * self.analytical_prr_bracket:.1f} %",
            "In bracket": "yes" if self.within_bracket else "NO",
            "P_F (mW)": f"{self.functional_power_w * 1e3:.3f}",
            "P_LPT (mW)": f"{self.low_power_power_w * 1e3:.3f}",
            "Backend": self.backend_used,
            "Runtime (s)": f"{self.elapsed_s:.2f}",
        }

    def progress_line(self) -> str:
        """One-line status printed per completed scenario."""
        bracket = "in bracket" if self.within_bracket else "OUT OF BRACKET"
        return (f"{self.algorithm} PRR @ {self.rows}x{self.columns}: "
                f"measured {100.0 * self.measured_prr:.1f} % vs analytical "
                f"{100.0 * self.analytical_prr:.1f} % ({bracket}, "
                f"{self.elapsed_s:.2f} s, {self.backend_used})")


def run_prr_case(case: PrrCase) -> PrrRecord:
    """Execute one BIST power campaign: both modes, measured + analytical.

    The multiprocessing work unit for PRR scenarios.  Both modes run
    through one :class:`repro.bist.BistController` (so the vectorized
    campaign's compiled trace is shared between them) and the record keeps
    the raw energy totals alongside the measured and predicted PRR.
    """
    geometry = case.geometry()
    algorithm = get_algorithm(case.algorithm)
    controller = BistController(geometry, backend=case.backend)

    started = time.perf_counter()
    functional = controller.run(algorithm, low_power=False)
    low_power = controller.run(algorithm, low_power=True)
    elapsed = time.perf_counter() - started
    backends_used = {functional.backend, low_power.backend}
    backend_used = "+".join(sorted(backends_used))

    measured_prr = (1.0 - low_power.average_power / functional.average_power
                    if functional.average_power > 0 else 0.0)
    analytical = AnalyticalPowerModel(geometry)
    plain = analytical.prr(algorithm)
    bracket = analytical.prr(algorithm, include_secondary=True,
                             include_next_column_recharge=True)
    within = (bracket - PRR_BRACKET_SLACK
              <= measured_prr <= plain + PRR_BRACKET_SLACK)

    return PrrRecord(
        rows=case.rows,
        columns=case.columns,
        bits_per_word=case.bits_per_word,
        algorithm=algorithm.name,
        backend=case.backend,
        backend_used=backend_used,
        seed=case.seed,
        cycles_per_mode=functional.cycles,
        functional_energy_j=functional.total_energy,
        low_power_energy_j=low_power.total_energy,
        functional_power_w=functional.average_power,
        low_power_power_w=low_power.average_power,
        measured_prr=measured_prr,
        analytical_prr=plain,
        analytical_prr_bracket=bracket,
        within_bracket=within,
        functional_planner=functional.planner,
        low_power_planner=low_power.planner,
        passed=functional.passed and low_power.passed,
        elapsed_s=elapsed,
    )


def prr_grid(geometries: Iterable[GeometryLike],
             algorithms: Iterable[str],
             backend: str = "auto",
             seed: int = 0) -> List["PrrCase"]:
    """Build a grid of BIST power campaigns: one case per geometry x algorithm."""
    cases: List[PrrCase] = []
    for geometry_spec in geometries:
        geometry = parse_geometry(geometry_spec)
        for algorithm in algorithms:
            cases.append(PrrCase(
                rows=geometry.rows, columns=geometry.columns,
                bits_per_word=geometry.bits_per_word,
                algorithm=algorithm, backend=backend, seed=seed))
    return cases


def paper_prr_cases(backend: str = "vectorized", seed: int = 0) -> List["PrrCase"]:
    """The paper-scale measured Table 1 through the BIST path: 512 x 512,
    all five algorithms, both modes per case."""
    return prr_grid(["512x512"],
                    [algorithm.name for algorithm in PAPER_TABLE1_ALGORITHMS],
                    backend=backend, seed=seed)


#: Any scenario kind a sweep can hold.
AnyCase = Union[SweepCase, CoverageCase, PrrCase]
#: Any record kind a sweep result can hold.
AnyRecord = Union[SweepRecord, "CoverageRecord", "PrrRecord"]

#: JSON ``kind`` tags per record class (power sweeps predate the tag and
#: stay the default for version-1 documents).
_RECORD_KINDS: Dict[str, type] = {"power": SweepRecord, "coverage": CoverageRecord,
                                  "prr": PrrRecord}


def _record_kind(record: AnyRecord) -> str:
    """The JSON ``kind`` tag of a record instance."""
    for kind, cls in _RECORD_KINDS.items():
        if isinstance(record, cls):
            return kind
    raise SweepError(f"unknown sweep record type {type(record).__name__}")


def _record_from_dict(cls, data: Dict[str, object]):
    """Rebuild a record dataclass, coercing CSV's stringly-typed fields."""
    kwargs = {}
    for spec in fields(cls):
        if spec.name not in data:
            raise SweepError(f"sweep record is missing field {spec.name!r}")
        value = data[spec.name]
        if spec.type in ("int", int):
            value = int(value)  # CSV round-trip delivers strings
        elif spec.type in ("float", float):
            value = float(value)
        elif spec.type in ("bool", bool) and isinstance(value, str):
            value = value == "True"
        kwargs[spec.name] = value
    return cls(**kwargs)


def execute_case(case: AnyCase) -> AnyRecord:
    """Run one scenario of any kind (the multiprocessing work unit)."""
    if isinstance(case, CoverageCase):
        return run_coverage_case(case)
    if isinstance(case, PrrCase):
        return run_prr_case(case)
    if isinstance(case, SweepCase):
        return run_case(case)
    raise SweepError(f"unknown sweep case type {type(case).__name__}")


@dataclass
class SweepResult:
    """The records of one executed sweep, with export/import helpers.

    Holds power records, coverage records, or a mix; JSON export tags each
    record with its kind (``"power"``/``"coverage"``), CSV export requires
    a homogeneous result (one header) and the importer sniffs the kind
    from the header fields.
    """

    records: List[AnyRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def table_rows(self) -> List[Dict[str, object]]:
        """The sweep as :func:`repro.analysis.tables.render_table` rows."""
        return [record.table_row() for record in self.records]

    def render(self, title: str = "Sweep results") -> str:
        """Plain-text report of the whole sweep.

        A homogeneous sweep renders as one table; a mixed sweep renders
        one table per record kind (the two kinds have different columns).
        """
        kinds = {_record_kind(record) for record in self.records}
        if len(kinds) <= 1:
            return render_table(self.table_rows(), title=title)
        sections = []
        for kind, record_cls in _RECORD_KINDS.items():
            rows = [record.table_row() for record in self.records
                    if isinstance(record, record_cls)]
            if rows:
                sections.append(render_table(rows, title=f"{title} — {kind}"))
        return "\n\n".join(sections)

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------
    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the records to ``path`` as a JSON document; returns the path."""
        path = Path(path)
        rows = [{"kind": _record_kind(record), **record.as_dict()}
                for record in self.records]
        payload = {"format": "repro-sweep", "version": 2, "records": rows}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "SweepResult":
        """Load a sweep previously written by :meth:`to_json`.

        Accepts both version-2 documents (kind-tagged records) and the
        version-1 power-only layout.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("format") != "repro-sweep":
            raise SweepError(f"{path} is not a repro sweep export")
        records: List[AnyRecord] = []
        for row in payload["records"]:
            row = dict(row)
            kind = row.pop("kind", "power")
            record_cls = _RECORD_KINDS.get(kind)
            if record_cls is None:
                raise SweepError(f"{path} contains unknown record kind {kind!r}")
            records.append(record_cls.from_dict(row))
        return cls(records)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the records to ``path`` as CSV; returns the path.

        CSV has one header, so the result must be homogeneous (all power
        records or all coverage records); use JSON for mixed sweeps.
        """
        import csv

        path = Path(path)
        kinds = {type(record) for record in self.records}
        if len(kinds) > 1:
            raise SweepError(
                "CSV export needs a homogeneous sweep (one record kind); "
                "use to_json for mixed results")
        record_cls = kinds.pop() if kinds else SweepRecord
        names = [spec.name for spec in fields(record_cls)]
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=names)
            writer.writeheader()
            for record in self.records:
                writer.writerow(record.as_dict())
        return path

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "SweepResult":
        """Load a sweep previously written by :meth:`to_csv`.

        The record kind is sniffed from the header: coverage exports carry
        the ``total_faults`` column, PRR-campaign exports
        ``analytical_prr_bracket``, power exports ``measured_prr`` only.
        """
        import csv

        with Path(path).open(newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            names = reader.fieldnames or []
            if "total_faults" in names:
                record_cls: type = CoverageRecord
            elif "analytical_prr_bracket" in names:
                record_cls = PrrRecord
            else:
                record_cls = SweepRecord
            return cls([record_cls.from_dict(row) for row in reader])


def sweep_grid(geometries: Iterable[GeometryLike],
               algorithms: Iterable[str],
               orders: Iterable[str] = ("row-major",),
               backends: Iterable[str] = ("auto",),
               any_direction: str = "up") -> List[SweepCase]:
    """Build the full cross-product grid of scenarios.

    ``geometries`` accepts anything :func:`parse_geometry` does; the other
    axes are names.  The grid order is geometry-major so large scenarios
    cluster together, which helps the multiprocessing fan-out balance.
    """
    cases: List[SweepCase] = []
    for geometry_spec in geometries:
        geometry = parse_geometry(geometry_spec)
        for order in orders:
            for backend in backends:
                for algorithm in algorithms:
                    cases.append(SweepCase(
                        rows=geometry.rows, columns=geometry.columns,
                        bits_per_word=geometry.bits_per_word,
                        algorithm=algorithm, order=order,
                        any_direction=any_direction, backend=backend))
    return cases


def paper_table1_cases(backend: str = "vectorized") -> List[SweepCase]:
    """The paper-scale measured Table 1: 512 x 512, all five algorithms."""
    return sweep_grid(["512x512"],
                      [algorithm.name for algorithm in PAPER_TABLE1_ALGORITHMS],
                      backends=(backend,))


class SweepRunner:
    """Executes a list of sweep scenarios, optionally in parallel.

    Accepts any mix of :class:`SweepCase` and :class:`CoverageCase`
    scenarios (dispatched through :func:`execute_case`).  ``processes``
    selects the fan-out: ``1`` (or ``None`` with one case) runs
    in-process; anything larger maps the cases over a
    ``multiprocessing.Pool`` of that size.  Workers rebuild every object
    from the case's names, so only plain data crosses process boundaries.
    """

    def __init__(self, cases: Sequence[AnyCase],
                 processes: Optional[int] = None) -> None:
        if not cases:
            raise SweepError("a sweep needs at least one case")
        if processes is not None and processes < 1:
            raise SweepError(f"processes must be >= 1, got {processes}")
        self.cases = list(cases)
        self.processes = processes

    def run(self, progress: bool = False) -> SweepResult:
        """Execute every case and return the collected :class:`SweepResult`.

        With ``progress`` true, a one-line status is printed per completed
        case (sequential mode) or per chunk (parallel mode).
        """
        workers = self.processes or 1
        workers = min(workers, len(self.cases))
        if workers <= 1:
            records = []
            for case in self.cases:
                record = execute_case(case)
                if progress:
                    print(f"[sweep] {record.progress_line()}")
                records.append(record)
            return SweepResult(records)
        with multiprocessing.get_context().Pool(processes=workers) as pool:
            records = pool.map(execute_case, self.cases)
        if progress:
            for record in records:
                print(f"[sweep] {record.progress_line()}")
        return SweepResult(records)
