"""Batch execution of scenario grids (the paper-scale sweeps).

A sweep batch-executes a grid of scenarios with optional multiprocessing
fan-out across scenarios and JSON/CSV export of the results.  Two scenario
kinds exist, both plain picklable descriptions:

* :class:`SweepCase` — one *(geometry x algorithm x address-order x
  backend)* test-power measurement: a full functional-vs-low-power-test-
  mode comparison (the paper's Table 1).  ``python -m repro.sweep --paper``
  runs the full 512 x 512 measured Table 1 in seconds.
* :class:`CoverageCase` — one *(geometry x algorithm x order-set)* fault-
  coverage campaign: the standard fault battery simulated under several
  address orders with per-fault invariance checking (the paper's Section 3
  DOF-1 argument).  ``python -m repro.sweep --paper-coverage`` runs the
  full 512 x 512 DOF-1 invariance check in seconds on the vectorized
  campaign engine.
* :class:`PrrCase` — one *(geometry x algorithm x backend)* BIST power
  campaign: both operating modes measured through the backend-pluggable
  :class:`repro.bist.BistController`, the measured Power Reduction Ratio
  differenced against the Section 5 analytical model and its extended
  (bracketing) variant.  ``python -m repro.sweep --paper-table1`` runs the
  full measured 512 x 512 Table 1 in seconds on the vectorized power
  campaign.

Design notes:

* cases carry only names and numbers (no live objects), so they travel
  cheaply to worker processes and round-trip through JSON;
* :func:`run_case` / :func:`run_coverage_case` are module-level functions —
  :func:`execute_case` dispatches on the case type and is the unit of work
  a ``multiprocessing.Pool`` maps over;
* execution **streams**: the runner consumes ``imap_unordered``, so each
  completed case is journaled and reported live while the rest of the grid
  is still running, and the final :class:`SweepResult` restores the stable
  input order;
* every worker process owns one :class:`_WorkerState` — memoised address
  orders, facades and a shared :class:`~repro.march.execution.TraceCache`,
  pre-warmed by the pool initializer — so the same algorithm x order trace
  is compiled once per worker instead of once per case;
* a campaign is durable: ``journal=path`` appends one fsync'd JSONL line
  per completed case (:mod:`repro.sweep.journal`), ``run(resume=True)``
  reloads it and re-executes only the missing cases, and
  :func:`shard_cases` splits a grid deterministically across machines;
* a :class:`SweepResult` holds one record per scenario and renders through
  :func:`repro.analysis.tables.render_table`, so sweep output matches the
  benchmark tables.  Campaign records carry the victim-sampling ``seed``,
  so an exported campaign is reproducible from its JSON/CSV alone.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
import time
from collections import Counter
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..analysis.tables import render_table
from ..bist import BistController, POWER_BACKENDS
from ..core.prr import AnalyticalPowerModel
from ..core.session import BACKENDS, ModeComparison, TestSession
from ..durable import atomic_write_bytes, atomic_write_text
from ..engine.dispatch import KERNEL_CHOICES
from ..faults import (
    DEFAULT_LOCATION_SEED,
    FAULT_BACKENDS,
    FaultSimulator,
    build_fault_list,
    default_fault_locations,
    run_campaign,
)
from ..march.element import AddressingDirection
from ..march.execution import TraceCache
from ..march.library import PAPER_TABLE1_ALGORITHMS, get_algorithm
from ..march.ordering import ORDER_REGISTRY, make_order
from ..sram.geometry import ArrayGeometry
from ..sram.memory import OperatingMode
from .journal import JournalEntry, RunJournal


class SweepError(Exception):
    """Raised on malformed sweep specifications."""


GeometryLike = Union[ArrayGeometry, Tuple[int, int], Tuple[int, int, int], str]


def _geometry_label(rows: int, columns: int, bits_per_word: int,
                    banks: int) -> str:
    """The compact geometry spelling used by labels and table rows."""
    label = f"{rows}x{columns}"
    if bits_per_word != 1:
        label += f"x{bits_per_word}"
    if banks != 1:
        label += f" ({banks} banks)"
    return label


def parse_geometry(spec: GeometryLike) -> ArrayGeometry:
    """Coerce a geometry specification into an :class:`ArrayGeometry`.

    Accepts an :class:`ArrayGeometry`, a ``(rows, columns)`` or
    ``(rows, columns, bits_per_word)`` tuple, or a string like ``"512x512"``
    / ``"64x64x4"`` (the CLI form).
    """
    if isinstance(spec, ArrayGeometry):
        return spec
    if isinstance(spec, str):
        parts = spec.lower().replace("×", "x").split("x")
        if len(parts) not in (2, 3):
            raise SweepError(
                f"geometry {spec!r} must look like ROWSxCOLS or ROWSxCOLSxBITS")
        try:
            numbers = [int(part) for part in parts]
        except ValueError as exc:
            raise SweepError(f"geometry {spec!r} has non-integer fields") from exc
        return ArrayGeometry(*numbers)
    return ArrayGeometry(*spec)


@dataclass(frozen=True)
class SweepCase:
    """One scenario of a sweep grid (picklable, JSON-friendly).

    Everything is carried by name or plain number so the case can be sent
    to a worker process and rebuilt there: the algorithm resolves through
    :func:`repro.march.get_algorithm`, the order through
    :func:`repro.march.ordering.make_order`.
    """

    rows: int
    columns: int
    algorithm: str
    bits_per_word: int = 1
    order: str = "row-major"
    any_direction: str = "up"
    backend: str = "auto"
    banks: int = 1
    bank_interleave: str = "blocked"
    #: vectorized-engine kernel tier (:data:`KERNEL_CHOICES`); ``None``
    #: follows the process default (see
    #: :func:`repro.engine.vectorized.default_kernel`), which is what
    #: keeps kernel-pinning context managers effective under every
    #: strategy.
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.order not in ORDER_REGISTRY:
            raise SweepError(
                f"unknown address order {self.order!r}; "
                f"available: {sorted(ORDER_REGISTRY)}")
        if self.backend not in BACKENDS:
            raise SweepError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}")
        if self.kernel is not None and self.kernel not in KERNEL_CHOICES:
            raise SweepError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {KERNEL_CHOICES}")
        get_algorithm(self.algorithm)  # fail fast on unknown names
        self.geometry()  # fail fast on inconsistent dimensions/banking

    def geometry(self) -> ArrayGeometry:
        """The array geometry this case runs on."""
        return ArrayGeometry(rows=self.rows, columns=self.columns,
                             bits_per_word=self.bits_per_word,
                             banks=self.banks,
                             bank_interleave=self.bank_interleave)

    def label(self) -> str:
        """Short human-readable scenario label used in logs and tables."""
        geometry = _geometry_label(self.rows, self.columns,
                                   self.bits_per_word, self.banks)
        return f"{self.algorithm} @ {geometry} [{self.order}, {self.backend}]"


@dataclass
class SweepRecord:
    """The measurements of one executed :class:`SweepCase`."""

    rows: int
    columns: int
    bits_per_word: int
    algorithm: str
    order: str
    any_direction: str
    backend: str            # requested backend
    backend_used: str       # engine(s) that actually ran: "vectorized",
                            # "reference", or "reference+vectorized" when
                            # "auto" fell back for only one of the two modes
    cycles_per_mode: int
    functional_power_w: float
    low_power_power_w: float
    measured_prr: float
    analytical_prr: float   # the paper's Section 5 equation
    analytical_prr_recharge: float  # + the next-column recharge term
    passed: bool            # no read mismatch in either mode
    elapsed_s: float
    banks: int = 1
    bank_interleave: str = "blocked"
    kernel: str = "default"  # requested kernel tier ("default" = follow
                             # the process default)
    kernel_used: str = ""    # concrete tier(s) that measured the modes
                             # ("flat"/"segmented"/"jit"/"gpu", joined
                             # with "+" if they differed; "" = reference
                             # engine only, which has no kernel seam)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (the JSON/CSV row)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepRecord":
        """Rebuild a record from :meth:`as_dict` output (JSON/CSV import)."""
        return _record_from_dict(cls, data)

    def table_row(self) -> Dict[str, object]:
        """One row of the sweep report table."""
        geometry = _geometry_label(self.rows, self.columns,
                                   self.bits_per_word, self.banks)
        return {
            "Algorithm": self.algorithm,
            "Geometry": geometry,
            "Order": self.order,
            "Backend": self.backend_used,
            "PRR measured": f"{100.0 * self.measured_prr:.1f} %",
            "PRR analytical": f"{100.0 * self.analytical_prr:.1f} %",
            "PRR analytical (+recharge)": f"{100.0 * self.analytical_prr_recharge:.1f} %",
            "P_F (mW)": f"{self.functional_power_w * 1e3:.3f}",
            "P_LPT (mW)": f"{self.low_power_power_w * 1e3:.3f}",
            "Cycles/mode": self.cycles_per_mode,
            "Runtime (s)": f"{self.elapsed_s:.2f}",
        }

    def progress_line(self) -> str:
        """One-line status printed per completed scenario."""
        return (f"{self.algorithm} @ {self.rows}x{self.columns} [{self.order}]: "
                f"PRR {100.0 * self.measured_prr:.1f} % "
                f"({self.elapsed_s:.2f} s, {self.backend_used})")


def run_case(case: SweepCase) -> SweepRecord:
    """Execute one scenario: both modes, measured and analytical PRR.

    This is the multiprocessing work unit.  Backend selection and fallback
    are the session facade's own (the shared
    :class:`repro.engine.dispatch.BackendDispatcher` contract): a requested
    ``"vectorized"`` backend surfaces engine errors, ``"auto"`` falls back
    to the reference engine per run, and the record's ``backend_used``
    reports which engine(s) actually measured the comparison.
    """
    algorithm = get_algorithm(case.algorithm)
    session = _session_for_case(case)

    started = time.perf_counter()
    functional = session.run(algorithm, OperatingMode.FUNCTIONAL)
    backends_used = {session.last_backend_used}
    low_power = session.run(algorithm, OperatingMode.LOW_POWER_TEST)
    backends_used.add(session.last_backend_used)
    elapsed = time.perf_counter() - started
    backend_used = "+".join(sorted(backend for backend in backends_used
                                   if backend is not None))
    return power_record(case, functional, low_power, backend_used, elapsed)


def power_record(case: SweepCase, functional, low_power, backend_used: str,
                 elapsed: float) -> SweepRecord:
    """Assemble the :class:`SweepRecord` of one measured power scenario.

    Shared by :func:`run_case` and the batched grid engine
    (:class:`repro.engine.grid.BatchedGridEngine`), so the two execution
    strategies derive records from raw mode measurements identically —
    the field-for-field equivalence the batched strategy guarantees.
    """
    geometry = case.geometry()
    algorithm = get_algorithm(case.algorithm)
    comparison = ModeComparison(algorithm=algorithm.name,
                                functional=functional, low_power=low_power)

    analytical = AnalyticalPowerModel(geometry)
    prediction = analytical.predict(algorithm)
    prediction_recharge = analytical.predict(
        algorithm, include_secondary=True, include_next_column_recharge=True)

    return SweepRecord(
        rows=case.rows,
        columns=case.columns,
        bits_per_word=case.bits_per_word,
        algorithm=algorithm.name,
        order=case.order,
        any_direction=case.any_direction,
        backend=case.backend,
        backend_used=backend_used,
        cycles_per_mode=comparison.functional.cycles,
        functional_power_w=comparison.functional.average_power,
        low_power_power_w=comparison.low_power.average_power,
        measured_prr=comparison.prr,
        analytical_prr=prediction.prr,
        analytical_prr_recharge=prediction_recharge.prr,
        passed=comparison.functional.passed and comparison.low_power.passed,
        elapsed_s=elapsed,
        banks=case.banks,
        bank_interleave=case.bank_interleave,
        kernel=case.kernel or "default",
        kernel_used=_kernels_used(functional, low_power),
    )


def _kernels_used(*results) -> str:
    """Concrete kernel tier(s) stamped on a set of mode results.

    Results carry the tier that measured them (``TestRunResult.kernel`` /
    ``BistResult.kernel``; empty on the reference engine).  Joined sorted
    with ``"+"`` — mirroring ``backend_used`` — in the rare case an
    ``"auto"`` backend fallback split the modes across engines.
    """
    return "+".join(sorted({result.kernel for result in results
                            if result.kernel}))


# ----------------------------------------------------------------------
# Fault-coverage campaign cases (the DOF-1 sweeps)
# ----------------------------------------------------------------------
#: The representative DOF-1 order set: the paper's word-line order, the
#: legacy fast-row order, and an arbitrary permutation.
INVARIANCE_ORDERS: Tuple[str, ...] = ("row-major", "column-major", "pseudo-random")

#: Pseudo-random victim locations added to the corners/centre spread of a
#: coverage campaign when no ``sample`` is given (one spelling, shared by
#: the case default, the grid builders and the CLI).
DEFAULT_SAMPLE = 6


@dataclass(frozen=True)
class CoverageCase:
    """One fault-coverage campaign scenario (picklable, JSON-friendly).

    The standard fault battery (single-cell and/or coupling) is placed at
    a deterministic victim spread — corners, centre, plus ``sample``
    pseudo-random cells drawn from ``seed`` — and simulated under every
    order in ``orders``; the per-fault verdicts are compared across orders
    (the paper's Section 3 DOF-1 invariance).  ``backend`` selects the
    fault-simulation engine (:data:`repro.faults.FAULT_BACKENDS`).
    """

    rows: int
    columns: int
    algorithm: str
    orders: Tuple[str, ...] = INVARIANCE_ORDERS
    any_direction: str = "up"
    backend: str = "auto"
    include_single: bool = True
    include_coupling: bool = True
    sample: int = DEFAULT_SAMPLE
    seed: int = DEFAULT_LOCATION_SEED

    def __post_init__(self) -> None:
        object.__setattr__(self, "orders", tuple(self.orders))
        if not self.orders:
            raise SweepError("a coverage case needs at least one address order")
        for order in self.orders:
            if order not in ORDER_REGISTRY:
                raise SweepError(
                    f"unknown address order {order!r}; "
                    f"available: {sorted(ORDER_REGISTRY)}")
        if self.backend not in FAULT_BACKENDS:
            raise SweepError(
                f"unknown backend {self.backend!r}; expected one of {FAULT_BACKENDS}")
        if not (self.include_single or self.include_coupling):
            raise SweepError("a coverage case needs at least one fault battery")
        get_algorithm(self.algorithm)  # fail fast on unknown names

    def geometry(self) -> ArrayGeometry:
        """The (bit-oriented) array geometry this campaign runs on."""
        return ArrayGeometry(rows=self.rows, columns=self.columns)

    def label(self) -> str:
        """Short human-readable scenario label used in logs and tables."""
        return (f"{self.algorithm} coverage @ {self.rows}x{self.columns} "
                f"[{len(self.orders)} orders, {self.backend}]")


@dataclass
class CoverageRecord:
    """The measurements of one executed :class:`CoverageCase`.

    ``seed`` and ``sample`` are recorded so the exported JSON/CSV alone
    reproduces the exact victim set of the campaign; ``orders`` is the
    ``"+"``-joined order list (flat for CSV).
    """

    rows: int
    columns: int
    algorithm: str
    orders: str
    any_direction: str
    backend: str            # requested backend
    backend_used: str       # engine that actually ran ("vectorized"/"reference")
    seed: int
    sample: int
    locations: int          # victim locations in the campaign
    total_faults: int
    detected_faults: int    # under the first order
    coverage: float
    invariant: bool         # per-fault detection identical across orders
    disagreements: int
    elapsed_s: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (the JSON/CSV row)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CoverageRecord":
        """Rebuild a record from :meth:`as_dict` output (JSON/CSV import)."""
        return _record_from_dict(cls, data)

    def table_row(self) -> Dict[str, object]:
        """One row of the sweep report table."""
        return {
            "Algorithm": self.algorithm,
            "Geometry": f"{self.rows}x{self.columns}",
            "Orders": self.orders,
            "Backend": self.backend_used,
            "Faults": self.total_faults,
            "Coverage": f"{100.0 * self.coverage:.1f} %",
            "DOF-1 invariant": "yes" if self.invariant else
                               f"NO ({self.disagreements})",
            "Seed": self.seed,
            "Runtime (s)": f"{self.elapsed_s:.2f}",
        }

    def progress_line(self) -> str:
        """One-line status printed per completed scenario."""
        status = "invariant" if self.invariant else \
            f"{self.disagreements} DISAGREEMENTS"
        return (f"{self.algorithm} coverage @ {self.rows}x{self.columns}: "
                f"{100.0 * self.coverage:.1f} % of {self.total_faults} faults, "
                f"DOF-1 {status} ({self.elapsed_s:.2f} s, {self.backend_used})")


def run_coverage_case(case: CoverageCase) -> CoverageRecord:
    """Execute one coverage campaign: all orders, per-fault invariance.

    The multiprocessing work unit for coverage scenarios.  The fault list
    is simulated once per order through the backend-pluggable
    :class:`repro.faults.FaultSimulator`; coverage is reported under the
    first order and the invariance verdict compares every order pair-wise
    against it.
    """
    geometry = case.geometry()
    algorithm = get_algorithm(case.algorithm)
    orders = [_order_for(name, geometry) for name in case.orders]
    locations = default_fault_locations(geometry, sample=case.sample,
                                        seed=case.seed)
    injections = build_fault_list(geometry, locations=locations,
                                  include_single=case.include_single,
                                  include_coupling=case.include_coupling)
    simulator = _simulator_for_case(case)

    started = time.perf_counter()
    campaign = run_campaign(algorithm, orders, geometry, injections,
                            simulator=simulator)
    elapsed = time.perf_counter() - started

    coverage = campaign.coverage_report()
    invariance = campaign.invariance_report()
    return CoverageRecord(
        rows=case.rows,
        columns=case.columns,
        algorithm=algorithm.name,
        orders="+".join(case.orders),
        any_direction=case.any_direction,
        backend=case.backend,
        backend_used=campaign.backend_used,
        seed=case.seed,
        sample=case.sample,
        locations=len(locations),
        total_faults=coverage.total_faults,
        detected_faults=coverage.detected_faults,
        coverage=coverage.coverage,
        invariant=invariance.invariant,
        disagreements=len(invariance.disagreements),
        elapsed_s=elapsed,
    )


def coverage_grid(geometries: Iterable[GeometryLike],
                  algorithms: Iterable[str],
                  orders: Sequence[str] = INVARIANCE_ORDERS,
                  backend: str = "auto",
                  any_direction: str = "up",
                  sample: int = DEFAULT_SAMPLE,
                  seed: int = DEFAULT_LOCATION_SEED) -> List["CoverageCase"]:
    """Build a grid of coverage campaigns: one case per geometry x algorithm."""
    cases: List[CoverageCase] = []
    for geometry_spec in geometries:
        geometry = parse_geometry(geometry_spec)
        if geometry.bits_per_word != 1:
            raise SweepError(
                "coverage campaigns model bit-oriented arrays; use "
                f"ROWSxCOLS geometries (got {geometry.describe()})")
        for algorithm in algorithms:
            cases.append(CoverageCase(
                rows=geometry.rows, columns=geometry.columns,
                algorithm=algorithm, orders=tuple(orders),
                any_direction=any_direction, backend=backend,
                sample=sample, seed=seed))
    return cases


def paper_coverage_cases(backend: str = "auto",
                         sample: int = DEFAULT_SAMPLE,
                         seed: int = DEFAULT_LOCATION_SEED
                         ) -> List["CoverageCase"]:
    """The paper-scale DOF-1 check: the full 512 x 512 array, three orders.

    March C- carries the full single-cell + coupling battery (the fault
    classes it targets); MATS+ carries the single-cell battery only — a
    weak test may detect untargeted coupling faults merely fortuitously,
    and such fortuitous detections are legitimately order-dependent.
    """
    march_cm = CoverageCase(rows=512, columns=512, algorithm="March C-",
                            backend=backend, sample=sample, seed=seed)
    mats_plus = CoverageCase(rows=512, columns=512, algorithm="MATS+",
                             backend=backend, include_coupling=False,
                             sample=sample, seed=seed)
    return [march_cm, mats_plus]


# ----------------------------------------------------------------------
# BIST power-campaign cases (the measured-vs-analytical Table 1 sweeps)
# ----------------------------------------------------------------------
#: Slack (in PRR fraction) allowed on either side of the analytical bracket
#: when classifying a measured PRR as in-bracket: the extended model may
#: overestimate an overhead by a hair (it books a full bit-line swing for
#: the next-column recharge where the measurement sees a decayed one).
PRR_BRACKET_SLACK = 0.002


@dataclass(frozen=True)
class PrrCase:
    """One BIST power-campaign scenario (picklable, JSON-friendly).

    The algorithm runs in both operating modes through the
    backend-pluggable :class:`repro.bist.BistController` (word-line-
    sequential address generator, the paper's BIST deployment) and the
    measured Power Reduction Ratio is differenced against the Section 5
    analytical prediction and its extended bracketing variant.
    ``backend`` selects the power-measurement engine
    (:data:`repro.bist.POWER_BACKENDS`); ``seed`` is recorded verbatim in
    the exports for provenance uniformity with the campaign records (the
    PRR measurement itself is deterministic).
    """

    rows: int
    columns: int
    algorithm: str
    bits_per_word: int = 1
    backend: str = "auto"
    seed: int = 0
    banks: int = 1
    bank_interleave: str = "blocked"
    #: Kernel tier request for the vectorized campaign (``None`` follows
    #: the process-wide default, keeping ``default_kernel(...)`` pinning
    #: effective under every strategy).
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend not in POWER_BACKENDS:
            raise SweepError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {POWER_BACKENDS}")
        if self.kernel is not None and self.kernel not in KERNEL_CHOICES:
            raise SweepError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {KERNEL_CHOICES}")
        get_algorithm(self.algorithm)  # fail fast on unknown names
        self.geometry()  # fail fast on inconsistent dimensions/banking

    def geometry(self) -> ArrayGeometry:
        """The array geometry this campaign runs on."""
        return ArrayGeometry(rows=self.rows, columns=self.columns,
                             bits_per_word=self.bits_per_word,
                             banks=self.banks,
                             bank_interleave=self.bank_interleave)

    def label(self) -> str:
        """Short human-readable scenario label used in logs and tables."""
        geometry = _geometry_label(self.rows, self.columns,
                                   self.bits_per_word, self.banks)
        return f"{self.algorithm} PRR @ {geometry} [{self.backend}]"


@dataclass
class PrrRecord:
    """The measurements of one executed :class:`PrrCase`.

    Carries the raw energy totals of both modes (the quantities the golden
    Table 1 regression pins), the measured PRR, and the analytical
    prediction band: ``analytical_prr`` is the paper's Section 5 equation,
    ``analytical_prr_bracket`` the extended variant (secondary overheads +
    next-column recharge) that bounds the measurement from below.
    ``backend`` / ``backend_used`` / ``seed`` make the exported JSON/CSV
    self-describing about how the numbers were produced.
    """

    rows: int
    columns: int
    bits_per_word: int
    algorithm: str
    backend: str            # requested backend
    backend_used: str       # engine that actually ran ("vectorized"/"reference")
    seed: int
    cycles_per_mode: int
    functional_energy_j: float
    low_power_energy_j: float
    functional_power_w: float
    low_power_power_w: float
    measured_prr: float
    analytical_prr: float           # the paper's Section 5 equation
    analytical_prr_bracket: float   # + secondary overheads + recharge term
    within_bracket: bool    # bracket-slack test of the measured PRR
    functional_planner: str
    low_power_planner: str
    passed: bool            # no comparator failure in either mode
    elapsed_s: float
    banks: int = 1
    bank_interleave: str = "blocked"
    kernel: str = "default"   # requested tier ("default" = process default)
    kernel_used: str = ""     # "+"-joined tiers that ran ("" = reference only)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (the JSON/CSV row)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PrrRecord":
        """Rebuild a record from :meth:`as_dict` output (JSON/CSV import)."""
        return _record_from_dict(cls, data)

    def table_row(self) -> Dict[str, object]:
        """One row of the sweep report table (the Table 1 layout)."""
        algorithm = get_algorithm(self.algorithm)
        geometry = _geometry_label(self.rows, self.columns,
                                   self.bits_per_word, self.banks)
        return {
            "Algorithm": self.algorithm,
            "Geometry": geometry,
            "# elm": algorithm.element_count,
            "# oper": algorithm.operation_count,
            "PRR measured": f"{100.0 * self.measured_prr:.1f} %",
            "PRR analytical": f"{100.0 * self.analytical_prr:.1f} %",
            "PRR bracket": f"{100.0 * self.analytical_prr_bracket:.1f} %",
            "In bracket": "yes" if self.within_bracket else "NO",
            "P_F (mW)": f"{self.functional_power_w * 1e3:.3f}",
            "P_LPT (mW)": f"{self.low_power_power_w * 1e3:.3f}",
            "Backend": self.backend_used,
            "Runtime (s)": f"{self.elapsed_s:.2f}",
        }

    def progress_line(self) -> str:
        """One-line status printed per completed scenario."""
        bracket = "in bracket" if self.within_bracket else "OUT OF BRACKET"
        return (f"{self.algorithm} PRR @ {self.rows}x{self.columns}: "
                f"measured {100.0 * self.measured_prr:.1f} % vs analytical "
                f"{100.0 * self.analytical_prr:.1f} % ({bracket}, "
                f"{self.elapsed_s:.2f} s, {self.backend_used})")


def run_prr_case(case: PrrCase) -> PrrRecord:
    """Execute one BIST power campaign: both modes, measured + analytical.

    The multiprocessing work unit for PRR scenarios.  Both modes run
    through one :class:`repro.bist.BistController` (so the vectorized
    campaign's compiled trace is shared between them) and the record keeps
    the raw energy totals alongside the measured and predicted PRR.
    """
    algorithm = get_algorithm(case.algorithm)
    controller = _controller_for_case(case)

    started = time.perf_counter()
    functional = controller.run(algorithm, low_power=False)
    low_power = controller.run(algorithm, low_power=True)
    elapsed = time.perf_counter() - started
    return prr_record(case, functional, low_power, elapsed)


def prr_record(case: PrrCase, functional, low_power,
               elapsed: float) -> PrrRecord:
    """Assemble the :class:`PrrRecord` of one measured BIST campaign.

    Shared by :func:`run_prr_case` and the batched grid engine, so both
    execution strategies derive records from the two
    :class:`~repro.bist.controller.BistResult` measurements identically.
    """
    geometry = case.geometry()
    algorithm = get_algorithm(case.algorithm)
    backends_used = {functional.backend, low_power.backend}
    backend_used = "+".join(sorted(backends_used))

    measured_prr = (1.0 - low_power.average_power / functional.average_power
                    if functional.average_power > 0 else 0.0)
    analytical = AnalyticalPowerModel(geometry)
    plain = analytical.prr(algorithm)
    bracket = analytical.prr(algorithm, include_secondary=True,
                             include_next_column_recharge=True)
    within = (bracket - PRR_BRACKET_SLACK
              <= measured_prr <= plain + PRR_BRACKET_SLACK)

    return PrrRecord(
        rows=case.rows,
        columns=case.columns,
        bits_per_word=case.bits_per_word,
        algorithm=algorithm.name,
        backend=case.backend,
        backend_used=backend_used,
        seed=case.seed,
        cycles_per_mode=functional.cycles,
        functional_energy_j=functional.total_energy,
        low_power_energy_j=low_power.total_energy,
        functional_power_w=functional.average_power,
        low_power_power_w=low_power.average_power,
        measured_prr=measured_prr,
        analytical_prr=plain,
        analytical_prr_bracket=bracket,
        within_bracket=within,
        functional_planner=functional.planner,
        low_power_planner=low_power.planner,
        passed=functional.passed and low_power.passed,
        elapsed_s=elapsed,
        banks=case.banks,
        bank_interleave=case.bank_interleave,
        kernel=case.kernel or "default",
        kernel_used=_kernels_used(functional, low_power),
    )


def prr_grid(geometries: Iterable[GeometryLike],
             algorithms: Iterable[str],
             backend: str = "auto",
             seed: int = 0,
             banks: Iterable[int] = (1,),
             bank_interleave: str = "blocked",
             kernel: Optional[str] = None) -> List["PrrCase"]:
    """Build a grid of BIST power campaigns: one case per
    geometry x bank-count x algorithm (PRR-vs-bank-count sweeps pass
    several ``banks``)."""
    cases: List[PrrCase] = []
    for geometry_spec in geometries:
        geometry = parse_geometry(geometry_spec)
        for bank_count in banks:
            for algorithm in algorithms:
                cases.append(PrrCase(
                    rows=geometry.rows, columns=geometry.columns,
                    bits_per_word=geometry.bits_per_word,
                    algorithm=algorithm, backend=backend, seed=seed,
                    banks=bank_count, bank_interleave=bank_interleave,
                    kernel=kernel))
    return cases


def paper_prr_cases(backend: str = "vectorized", seed: int = 0,
                    kernel: Optional[str] = None) -> List["PrrCase"]:
    """The paper-scale measured Table 1 through the BIST path: 512 x 512,
    all five algorithms, both modes per case."""
    return prr_grid(["512x512"],
                    [algorithm.name for algorithm in PAPER_TABLE1_ALGORITHMS],
                    backend=backend, seed=seed, kernel=kernel)


#: Any scenario kind a sweep can hold.
AnyCase = Union[SweepCase, CoverageCase, PrrCase]
#: Any record kind a sweep result can hold.
AnyRecord = Union[SweepRecord, "CoverageRecord", "PrrRecord"]

#: JSON ``kind`` tags per record class (power sweeps predate the tag and
#: stay the default for version-1 documents).
_RECORD_KINDS: Dict[str, type] = {"power": SweepRecord, "coverage": CoverageRecord,
                                  "prr": PrrRecord}


#: JSON ``kind`` tags per case class (matching the record tags).
_CASE_KINDS: Dict[str, type] = {"power": SweepCase, "coverage": CoverageCase,
                                "prr": PrrCase}


def _record_kind(record: AnyRecord) -> str:
    """The JSON ``kind`` tag of a record instance."""
    for kind, cls in _RECORD_KINDS.items():
        if isinstance(record, cls):
            return kind
    raise SweepError(f"unknown sweep record type {type(record).__name__}")


def case_kind(case: AnyCase) -> str:
    """The ``kind`` tag of a case instance (``"power"/"coverage"/"prr"``)."""
    for kind, cls in _CASE_KINDS.items():
        if isinstance(case, cls):
            return kind
    raise SweepError(f"unknown sweep case type {type(case).__name__}")


def case_fingerprint(case: AnyCase) -> Dict[str, object]:
    """The kind-tagged, JSON-normalised flat form of a case.

    This is what the run journal stores next to each record and what
    resume matches against: two fingerprints are equal exactly when the
    cases describe the same scenario (tuples are normalised to lists, so a
    fingerprint round-trips through JSON unchanged).
    """
    return json.loads(json.dumps({"kind": case_kind(case), **asdict(case)},
                                 sort_keys=True))


def fingerprint_digest(fingerprint: Dict[str, object]) -> str:
    """The content address of one case fingerprint (hex sha256).

    Canonical form: compact separators, sorted keys — the same scenario
    always hashes to the same digest, whichever client serialised it.
    The serving layer keys its on-disk result cache and its request
    coalescing on this digest.
    """
    canonical = json.dumps(fingerprint, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def case_from_dict(data: Dict[str, object]) -> AnyCase:
    """Rebuild a case dataclass from its flat (fingerprint) dictionary.

    The inverse of :func:`case_fingerprint`: accepts the kind-tagged flat
    form (``kind`` defaults to ``"power"``, matching the record loaders)
    and rejects unknown kinds and unknown or missing fields with
    :class:`SweepError` — a served request must fail loudly, not half
    parse.  ``case_from_dict(case_fingerprint(case)) == case`` for every
    case kind.
    """
    if not isinstance(data, dict):
        raise SweepError(
            f"a case description must be a JSON object, got "
            f"{type(data).__name__}")
    payload = dict(data)
    kind = payload.pop("kind", "power")
    cls = _CASE_KINDS.get(kind)
    if cls is None:
        raise SweepError(
            f"unknown case kind {kind!r}; expected one of "
            f"{sorted(_CASE_KINDS)}")
    allowed = {spec.name for spec in fields(cls)}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise SweepError(
            f"unknown field(s) {unknown} for a {kind!r} case; expected a "
            f"subset of {sorted(allowed)}")
    try:
        return cls(**payload)
    except TypeError as exc:  # missing required fields
        raise SweepError(f"invalid {kind!r} case: {exc}") from exc


def _record_from_dict(cls, data: Dict[str, object]):
    """Rebuild a record dataclass, coercing CSV's stringly-typed fields.

    Fields with a dataclass default (e.g. ``banks``) may be absent —
    exports written before the field existed import with the default.
    """
    from dataclasses import MISSING

    kwargs = {}
    for spec in fields(cls):
        if spec.name not in data:
            if spec.default is not MISSING:
                kwargs[spec.name] = spec.default
                continue
            raise SweepError(f"sweep record is missing field {spec.name!r}")
        value = data[spec.name]
        if spec.type in ("int", int):
            value = int(value)  # CSV round-trip delivers strings
        elif spec.type in ("float", float):
            value = float(value)
        elif spec.type in ("bool", bool) and isinstance(value, str):
            value = value == "True"
        kwargs[spec.name] = value
    return cls(**kwargs)


def execute_case(case: AnyCase) -> AnyRecord:
    """Run one scenario of any kind (the multiprocessing work unit)."""
    if isinstance(case, CoverageCase):
        return run_coverage_case(case)
    if isinstance(case, PrrCase):
        return run_prr_case(case)
    if isinstance(case, SweepCase):
        return run_case(case)
    raise SweepError(f"unknown sweep case type {type(case).__name__}")


def _execute_indexed(item: Tuple[int, AnyCase]) -> Tuple[int, AnyRecord]:
    """Pool work unit for the streaming runner: keep the case's index with
    its record so ``imap_unordered`` completions can be re-ordered."""
    index, case = item
    return index, execute_case(case)


# ----------------------------------------------------------------------
# Process-local worker state (orders, facades, compiled traces)
# ----------------------------------------------------------------------
class _WorkerState:
    """Caches one sweep worker shares across every case it executes.

    Cases are plain names, so the naive work unit rebuilds every object per
    case — in particular it recompiles the same algorithm x order
    :class:`~repro.march.execution.OperationTrace` over and over, because
    the trace caches inside the facades key on *object identity* and each
    case used to construct fresh orders and facades.  The worker state
    fixes both halves: address orders are memoised by (name, geometry), and
    facades (:class:`TestSession` / :class:`FaultSimulator` /
    :class:`BistController`) are memoised by their configuration axes with
    one shared :class:`~repro.march.execution.TraceCache` threaded through,
    so identities are stable and every compile happens once per worker.

    :meth:`warm` is the pool initializer's pre-warming pass: it memoises
    the grid's orders and facades and compiles the traces that several
    pending cases *share* (e.g. a seed sweep repeating one
    algorithm x order) before the first case arrives.  Traces only one
    case needs are left to compile lazily on first use — pre-building
    them in every worker would multiply the compile work by the worker
    count for zero extra cache hits.  Warming is best-effort: a scenario
    the engine rejects warms nothing and surfaces its real error during
    execution.
    """

    def __init__(self) -> None:
        #: compiled traces shared by every facade of this worker.
        self.traces = TraceCache()
        self._orders: Dict[Tuple[str, int, int, int], object] = {}
        self._sessions: Dict[Tuple, TestSession] = {}
        self._simulators: Dict[Tuple, FaultSimulator] = {}
        self._controllers: Dict[Tuple, BistController] = {}

    # ------------------------------------------------------------------
    def order_for(self, name: str, geometry: ArrayGeometry):
        """The memoised :class:`AddressOrder` for ``name`` on ``geometry``."""
        key = (name, geometry.rows, geometry.columns, geometry.bits_per_word)
        order = self._orders.get(key)
        if order is None:
            order = make_order(name, geometry)
            self._orders[key] = order
        return order

    def session_for(self, case: "SweepCase") -> TestSession:
        """The memoised power-measurement session for ``case``'s axes."""
        key = (case.rows, case.columns, case.bits_per_word, case.order,
               case.any_direction, case.backend, case.banks,
               case.bank_interleave, case.kernel)
        session = self._sessions.get(key)
        if session is None:
            geometry = case.geometry()
            session = TestSession(
                geometry, order=self.order_for(case.order, geometry),
                any_direction=AddressingDirection(case.any_direction),
                detailed=False, backend=case.backend, kernel=case.kernel)
            self._sessions[key] = session
        return session

    def simulator_for(self, case: "CoverageCase") -> FaultSimulator:
        """The memoised fault simulator for ``case``'s axes."""
        key = (case.rows, case.columns, case.any_direction, case.backend)
        simulator = self._simulators.get(key)
        if simulator is None:
            simulator = FaultSimulator(
                case.geometry(),
                any_direction=AddressingDirection(case.any_direction),
                backend=case.backend, trace_cache=self.traces)
            self._simulators[key] = simulator
        return simulator

    def controller_for(self, case: "PrrCase") -> BistController:
        """The memoised BIST controller for ``case``'s axes."""
        key = (case.rows, case.columns, case.bits_per_word, case.backend,
               case.banks, case.bank_interleave, case.kernel)
        controller = self._controllers.get(key)
        if controller is None:
            controller = BistController(case.geometry(), backend=case.backend,
                                        trace_cache=self.traces,
                                        kernel=case.kernel)
            self._controllers[key] = controller
        return controller

    # ------------------------------------------------------------------
    def warm_case(self, case: AnyCase,
                  shared: Optional[frozenset] = None) -> None:
        """Memoise one scenario's facade and compile its (shared) traces.

        With ``shared`` given (the initializer's pass), only traces whose
        spec appears in it — i.e. traces several pending cases reuse —
        are compiled eagerly; the rest compile lazily on first use.
        Without it (a direct call), every trace the case needs is built.
        """
        algorithm = get_algorithm(case.algorithm)
        specs = _trace_warm_specs(case)
        wanted = specs if shared is None else \
            [spec for spec in specs if spec in shared]
        if isinstance(case, CoverageCase):
            simulator = self.simulator_for(case)
            for spec, name in zip(specs, case.orders):
                if spec in wanted:
                    simulator.trace_for(algorithm,
                                        self.order_for(name, case.geometry()))
        elif isinstance(case, PrrCase):
            controller = self.controller_for(case)
            if wanted:
                controller.warm(algorithm)
        elif isinstance(case, SweepCase):
            self.session_for(case)  # the engine itself builds lazily

    def warm(self, cases: Sequence[AnyCase]) -> None:
        """Best-effort pre-warm for a grid: facades for every scenario,
        eager trace compiles only for specs shared by multiple cases."""
        counts = Counter(spec for case in cases
                         for spec in _trace_warm_specs(case))
        shared = frozenset(spec for spec, count in counts.items()
                           if count > 1)
        for case in cases:
            try:
                self.warm_case(case, shared)
            except Exception:
                # Warming must never kill a worker; a genuinely broken
                # scenario reports its error when it executes.
                continue


def _trace_warm_specs(case: AnyCase) -> List[Tuple]:
    """Hashable descriptions of the compiled traces a case will need.

    Two cases with a common spec replay the same
    :class:`~repro.march.execution.OperationTrace`; the worker pre-warm
    compiles exactly the specs with multiplicity > 1.  Power cases compile
    no trace (the vectorized test engine works from the order's coordinate
    arrays directly), so they contribute none.
    """
    if isinstance(case, CoverageCase):
        return [("coverage", case.algorithm, order, case.rows, case.columns,
                 case.any_direction)
                for order in case.orders]
    if isinstance(case, PrrCase):
        return [("prr", case.algorithm, case.rows, case.columns,
                 case.bits_per_word, case.backend, case.banks,
                 case.bank_interleave)]
    return []


#: The worker state of the executing thread (``None`` until a sweep —
#: or the serving layer's worker pool — installs one).  Thread-local
#: rather than a plain module global: concurrent batched passes (the
#: campaign service runs one per executor thread) must not stomp each
#: other's memoised facades mid-run.  Pool worker *processes* each see
#: their own main thread, so the multiprocessing path is unchanged.
_WORKER_STATE_SLOT = threading.local()


def _get_worker_state() -> Optional[_WorkerState]:
    """The calling thread's installed worker state, or ``None``."""
    return getattr(_WORKER_STATE_SLOT, "state", None)


def _init_worker(cases: Sequence[AnyCase]) -> None:
    """``multiprocessing.Pool`` initializer: fresh pre-warmed worker state."""
    state = _WorkerState()
    _set_worker_state(state)
    state.warm(cases)


def _set_worker_state(state: Optional[_WorkerState]) -> None:
    """Install (or clear) the calling thread's worker state.

    Sequential runs scope their state to the run — installed before the
    first case, restored afterwards — so a long-lived process executing
    many sweeps does not accumulate facades and compiled traces forever;
    pool workers die with their pool, which bounds theirs naturally.
    """
    _WORKER_STATE_SLOT.state = state


def _order_for(name: str, geometry: ArrayGeometry):
    """Resolve an address order, through the worker state when present."""
    state = _get_worker_state()
    if state is not None:
        return state.order_for(name, geometry)
    return make_order(name, geometry)


def _session_for_case(case: "SweepCase") -> TestSession:
    """Resolve the session facade, through the worker state when present."""
    state = _get_worker_state()
    if state is not None:
        return state.session_for(case)
    geometry = case.geometry()
    return TestSession(geometry, order=make_order(case.order, geometry),
                       any_direction=AddressingDirection(case.any_direction),
                       detailed=False, backend=case.backend,
                       kernel=case.kernel)


def _simulator_for_case(case: "CoverageCase") -> FaultSimulator:
    """Resolve the fault simulator, through the worker state when present."""
    state = _get_worker_state()
    if state is not None:
        return state.simulator_for(case)
    return FaultSimulator(case.geometry(),
                          any_direction=AddressingDirection(case.any_direction),
                          backend=case.backend)


def _controller_for_case(case: "PrrCase") -> BistController:
    """Resolve the BIST controller, through the worker state when present."""
    state = _get_worker_state()
    if state is not None:
        return state.controller_for(case)
    return BistController(case.geometry(), backend=case.backend,
                          kernel=case.kernel)


@dataclass
class SweepResult:
    """The records of one executed sweep, with export/import helpers.

    Holds power records, coverage records, or a mix; JSON export tags each
    record with its kind (``"power"``/``"coverage"``), CSV export requires
    a homogeneous result (one header) and the importer sniffs the kind
    from the header fields.
    """

    records: List[AnyRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def table_rows(self) -> List[Dict[str, object]]:
        """The sweep as :func:`repro.analysis.tables.render_table` rows."""
        return [record.table_row() for record in self.records]

    def render(self, title: str = "Sweep results") -> str:
        """Plain-text report of the whole sweep.

        A homogeneous sweep renders as one table; a mixed sweep renders
        one table per record kind (the two kinds have different columns).
        """
        kinds = {_record_kind(record) for record in self.records}
        if len(kinds) <= 1:
            return render_table(self.table_rows(), title=title)
        sections = []
        for kind, record_cls in _RECORD_KINDS.items():
            rows = [record.table_row() for record in self.records
                    if isinstance(record, record_cls)]
            if rows:
                sections.append(render_table(rows, title=f"{title} — {kind}"))
        return "\n\n".join(sections)

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------
    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the records to ``path`` as a JSON document; returns the path."""
        path = Path(path)
        rows = [{"kind": _record_kind(record), **record.as_dict()}
                for record in self.records]
        payload = {"format": "repro-sweep", "version": 2, "records": rows}
        # Atomic + fsync'd: re-exporting over a previous artifact must
        # never leave a torn JSON document behind a crash (RPR003).
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
        return path

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "SweepResult":
        """Load a sweep previously written by :meth:`to_json`.

        Accepts both version-2 documents (kind-tagged records) and the
        version-1 power-only layout.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("format") != "repro-sweep":
            raise SweepError(f"{path} is not a repro sweep export")
        records: List[AnyRecord] = []
        for row in payload["records"]:
            row = dict(row)
            kind = row.pop("kind", "power")
            record_cls = _RECORD_KINDS.get(kind)
            if record_cls is None:
                raise SweepError(f"{path} contains unknown record kind {kind!r}")
            records.append(record_cls.from_dict(row))
        return cls(records)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the records to ``path`` as CSV; returns the path.

        CSV has one header, so the result must be homogeneous (all power
        records or all coverage records); use JSON for mixed sweeps.
        """
        import csv

        path = Path(path)
        kinds = {type(record) for record in self.records}
        if len(kinds) > 1:
            raise SweepError(
                "CSV export needs a homogeneous sweep (one record kind); "
                "use to_json for mixed results")
        record_cls = kinds.pop() if kinds else SweepRecord
        names = [spec.name for spec in fields(record_cls)]
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=names)
        writer.writeheader()
        for record in self.records:
            writer.writerow(record.as_dict())
        # Atomic + fsync'd, same contract as :meth:`to_json` (RPR003).
        atomic_write_text(path, buffer.getvalue())
        return path

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "SweepResult":
        """Load a sweep previously written by :meth:`to_csv`.

        The record kind is sniffed from the header: coverage exports carry
        the ``total_faults`` column, PRR-campaign exports
        ``analytical_prr_bracket``, power exports ``measured_prr`` only.
        """
        import csv

        with Path(path).open(newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            names = reader.fieldnames or []
            if "total_faults" in names:
                record_cls: type = CoverageRecord
            elif "analytical_prr_bracket" in names:
                record_cls = PrrRecord
            else:
                record_cls = SweepRecord
            return cls([record_cls.from_dict(row) for row in reader])


def sweep_grid(geometries: Iterable[GeometryLike],
               algorithms: Iterable[str],
               orders: Iterable[str] = ("row-major",),
               backends: Iterable[str] = ("auto",),
               any_direction: str = "up",
               banks: Iterable[int] = (1,),
               bank_interleave: str = "blocked",
               kernel: Optional[str] = None) -> List[SweepCase]:
    """Build the full cross-product grid of scenarios.

    ``geometries`` accepts anything :func:`parse_geometry` does; the other
    axes are names (``banks`` enumerates sub-array counts per geometry).
    The grid order is geometry-major so large scenarios cluster together,
    which helps the multiprocessing fan-out balance.
    """
    cases: List[SweepCase] = []
    for geometry_spec in geometries:
        geometry = parse_geometry(geometry_spec)
        for bank_count in banks:
            for order in orders:
                for backend in backends:
                    for algorithm in algorithms:
                        cases.append(SweepCase(
                            rows=geometry.rows, columns=geometry.columns,
                            bits_per_word=geometry.bits_per_word,
                            algorithm=algorithm, order=order,
                            any_direction=any_direction, backend=backend,
                            banks=bank_count,
                            bank_interleave=bank_interleave,
                            kernel=kernel))
    return cases


def paper_table1_cases(backend: str = "vectorized",
                       kernel: Optional[str] = None) -> List[SweepCase]:
    """The paper-scale measured Table 1: 512 x 512, all five algorithms."""
    return sweep_grid(["512x512"],
                      [algorithm.name for algorithm in PAPER_TABLE1_ALGORITHMS],
                      backends=(backend,), kernel=kernel)


def shard_cases(cases: Sequence[AnyCase], index: int,
                total: int) -> List[AnyCase]:
    """Deterministic round-robin shard ``index`` of ``total`` (1-based).

    Splitting a grid across machines: shard ``i`` takes cases
    ``i-1, i-1+total, i-1+2*total, ...`` of the input order.  The shards
    of one grid are pairwise disjoint, exhaustive (their union is the
    grid) and deterministic (the same spec always yields the same slice),
    and round-robin keeps the geometry-major clustering of
    :func:`sweep_grid` balanced across shards.  Each shard is an ordinary
    case list — journal and resume apply per shard.
    """
    if total < 1:
        raise SweepError(f"shard count must be >= 1, got {total}")
    if not 1 <= index <= total:
        raise SweepError(
            f"shard index must be in 1..{total} (1-based), got {index}")
    return list(cases)[index - 1::total]


#: Valid values of the :class:`SweepRunner` ``strategy`` switch.
STRATEGIES = ("auto", "batched", "percase")


def _batchable(case: AnyCase) -> bool:
    """True when the batched grid engine can stack this scenario.

    Power and PRR scenarios on a vectorizable backend stack; the
    reference backend (no bulk kernel) and coverage campaigns (a
    different engine family) execute per case either way.
    """
    return isinstance(case, (SweepCase, PrrCase)) and \
        case.backend != "reference"


class SweepRunner:
    """Executes a list of sweep scenarios, streaming and optionally parallel.

    Accepts any mix of :class:`SweepCase`, :class:`CoverageCase` and
    :class:`PrrCase` scenarios (dispatched through :func:`execute_case`).

    ``strategy`` selects how the grid is evaluated:

    * ``"percase"`` — one scenario at a time (the multiprocessing work
      unit), optionally fanned out over worker processes;
    * ``"batched"`` — the grid-batched engine
      (:class:`repro.engine.grid.BatchedGridEngine`): per-geometry groups
      share one compiled-trace cache and one stacked flat-kernel pass for
      all algorithms, orders and both planners, in-process.  Records are
      bit-identical to the per-case path (``elapsed_s`` aside); journal,
      resume and shard semantics are unchanged.  Requires numpy — without
      it the runner falls back to ``"percase"`` (the CLI warns, and the
      journal header records what actually ran);
    * ``"auto"`` (default) — ``"batched"`` when numpy is available and no
      multi-process fan-out was requested (``processes`` of ``None`` with
      an all-stackable grid, or an explicit ``1``), else ``"percase"``.

    ``processes`` selects the per-case fan-out: ``None`` (the default)
    uses one worker per CPU core, clamped to the number of cases; ``1``
    runs in-process; anything larger maps the cases over a
    ``multiprocessing.Pool`` of that size.  Workers rebuild every object
    from the case's names (only plain data crosses process boundaries) and
    are pre-warmed by an initializer that compiles the grid's
    algorithm x order traces into a process-local cache once, instead of
    once per case.  The batched strategy is in-process and ignores
    ``processes``.

    Execution streams in both strategies: completions are consumed as
    they happen, so progress lines appear live and each finished case is
    journaled immediately; the returned :class:`SweepResult` restores the
    stable input order.  ``journal`` names an append-only JSONL file
    (:class:`repro.sweep.journal.RunJournal`) that makes the campaign
    resumable: ``run(resume=True)`` reloads it, keeps the
    already-measured records verbatim and re-executes only the missing
    cases.
    """

    def __init__(self, cases: Sequence[AnyCase],
                 processes: Optional[int] = None,
                 journal: Union[str, Path, None] = None,
                 strategy: str = "auto",
                 header_meta: Optional[Dict[str, object]] = None) -> None:
        if not cases:
            raise SweepError("a sweep needs at least one case")
        if processes is not None and processes < 1:
            raise SweepError(f"processes must be >= 1, got {processes}")
        if strategy not in STRATEGIES:
            raise SweepError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        self.cases = list(cases)
        self.processes = processes
        self.journal = Path(journal) if journal is not None else None
        self.strategy = strategy
        #: extra metadata merged into a fresh journal's header line —
        #: an orchestrator (e.g. :mod:`repro.distrib`) stamps the lease
        #: identity and global case indices here, so a shard journal is
        #: self-describing when merged later.  Runner-owned keys win.
        self.header_meta = dict(header_meta) if header_meta else None
        #: strategy that actually executed the most recent :meth:`run`
        #: (``None`` before the first run).
        self.strategy_used: Optional[str] = None

    # ------------------------------------------------------------------
    def resolve_strategy(self, cases: Optional[Sequence[AnyCase]] = None
                         ) -> str:
        """The execution strategy a run over ``cases`` will actually use.

        An explicit ``"batched"`` request degrades to ``"percase"`` only
        when numpy is unavailable (the clean fallback the CLI warns
        about); ``"auto"`` additionally respects a requested
        multi-process fan-out and keeps grids with per-case-only
        scenarios on the parallel path.
        """
        if self.strategy == "percase":
            return "percase"
        from importlib.util import find_spec

        numpy_available = find_spec("numpy") is not None
        if self.strategy == "batched":
            return "batched" if numpy_available else "percase"
        if not numpy_available:
            return "percase"
        if self.processes == 1:
            return "batched"
        if self.processes is None:
            pending = self.cases if cases is None else cases
            if all(_batchable(case) for case in pending):
                return "batched"
        return "percase"

    # ------------------------------------------------------------------
    def resolved_processes(self, pending: Optional[int] = None) -> int:
        """The worker count a run will actually use.

        ``processes=None`` resolves to ``os.cpu_count()``; either way the
        count is clamped to the number of cases still to execute
        (``pending``, defaulting to the full grid) — a pool larger than
        its work list is pure startup cost.
        """
        count = len(self.cases) if pending is None else pending
        workers = self.processes if self.processes is not None \
            else (os.cpu_count() or 1)
        return max(1, min(workers, count))

    # ------------------------------------------------------------------
    def _restore_from_journal(self) -> Dict[int, AnyRecord]:
        """Load the journal and rebuild one record per completed case.

        Entries must belong to *this* grid: an index outside the case list
        or a case fingerprint that disagrees with the case at that index
        means the journal was written for a different grid (or a different
        shard of it) and resuming would silently mis-assign measurements —
        that is an error, not a skip.
        """
        restored: Dict[int, AnyRecord] = {}
        for index, entry in RunJournal(self.journal).latest_by_index().items():
            if not 0 <= index < len(self.cases):
                raise SweepError(
                    f"journal {self.journal} records case index {index}, "
                    f"outside this {len(self.cases)}-case grid; was it "
                    "written for a different grid or shard?")
            expected = case_fingerprint(self.cases[index])
            if entry.case != expected:
                raise SweepError(
                    f"journal {self.journal} entry for case {index} does not "
                    "match this grid; resume requires the journal's original "
                    "grid and shard")
            record_cls = _RECORD_KINDS.get(entry.kind)
            if record_cls is None:
                raise SweepError(
                    f"journal {self.journal} contains unknown record kind "
                    f"{entry.kind!r}")
            restored[index] = record_cls.from_dict(entry.record)
        return restored

    def _completions(self, pending: Sequence[Tuple[int, AnyCase]],
                     strategy: str = "percase"
                     ) -> Iterator[Tuple[int, AnyRecord]]:
        """Yield ``(index, record)`` as cases complete.

        The batched strategy streams the grid engine's stacked-group
        completions.  Per-case sequential mode executes in input order
        in-process (warming the local state first); parallel mode streams
        ``imap_unordered`` completions out of a pre-warmed pool, so the
        slowest case never gates reporting of the others.
        """
        if not pending:
            return
        if strategy == "batched":
            # Deferred import: the grid engine needs numpy, the runner
            # must not (resolve_strategy already verified availability).
            from ..engine.grid import BatchedGridEngine

            engine = BatchedGridEngine([case for _, case in pending])
            indices = [index for index, _ in pending]
            for position, record in engine.completions():
                yield indices[position], record
            return
        workers = self.resolved_processes(len(pending))
        cases = [case for _, case in pending]
        if workers <= 1:
            state = _WorkerState()
            state.warm(cases)
            previous = _get_worker_state()
            _set_worker_state(state)
            try:
                for index, case in pending:
                    yield index, execute_case(case)
            finally:
                _set_worker_state(previous)
            return
        with multiprocessing.get_context().Pool(
                processes=workers, initializer=_init_worker,
                initargs=(cases,)) as pool:
            for index, record in pool.imap_unordered(_execute_indexed,
                                                     list(pending)):
                yield index, record

    def run(self, progress: bool = False, resume: bool = False,
            progress_sink: Optional[Callable[[str], None]] = None,
            case_sink: Optional[Callable[[int, AnyRecord], None]] = None
            ) -> SweepResult:
        """Execute every case and return the collected :class:`SweepResult`.

        With ``progress`` true, a one-line status is emitted per completed
        case *as it completes* — live in both sequential and parallel mode
        — to ``progress_sink`` (default: ``print``).  With ``resume`` true
        (requires a ``journal``), cases already recorded in the journal are
        restored verbatim instead of re-executed.  Records are returned in
        case order regardless of completion order.

        ``case_sink`` is called as ``case_sink(index, record)`` after each
        freshly-executed case is journaled (never for restored cases).  An
        exception it raises aborts the run — this is the cancellation seam
        a distributed worker uses to stop executing a lease that has been
        stolen from it: every case completed so far is already durable in
        the journal, so aborting loses nothing.
        """
        emit = progress_sink if progress_sink is not None else print
        records: List[Optional[AnyRecord]] = [None] * len(self.cases)
        if resume:
            if self.journal is None:
                raise SweepError(
                    "resume needs a journal: SweepRunner(..., journal=path)")
            restored = self._restore_from_journal()
            for index, record in restored.items():
                records[index] = record
            if progress and restored:
                emit(f"[sweep] resumed {len(restored)} of {len(self.cases)} "
                     f"cases from {self.journal}")
        elif self.journal is not None and self.journal.exists() \
                and self.journal.stat().st_size > 0:
            # Appending a fresh campaign onto another run's journal would
            # poison any later resume (stale indices/fingerprints from the
            # old grid survive last-wins merging) — refuse up front.  But
            # only completed cases make a journal worth protecting: a run
            # killed before its first append leaves an entry-less file
            # (header-only, or a torn header fragment) that records no
            # measurement, so a fresh campaign may reclaim it.  A corrupt
            # or foreign file still fails loudly here via load().
            if RunJournal(self.journal).load():
                raise SweepError(
                    f"journal {self.journal} already exists; resume it "
                    "(run(resume=True) / --resume) or remove the file to "
                    "start a fresh campaign")
            # Stale entry-less header: restart fresh.  Atomically, so a
            # crash here leaves either the old header (reclaimed again on
            # the next run) or a clean empty file — never a torn fragment.
            atomic_write_bytes(self.journal, b"")
        pending = [(index, case) for index, case in enumerate(self.cases)
                   if records[index] is None]
        strategy_used = self.resolve_strategy([case for _, case in pending])
        self.strategy_used = strategy_used
        journal = RunJournal(self.journal) if self.journal is not None else None
        if journal is not None:
            journal.open()  # an unwritable path must fail before any work
            if not self.journal.exists() or self.journal.stat().st_size == 0:
                # A fresh journal opens with a run-metadata header: which
                # strategy actually executes (e.g. a batched request that
                # fell back to per-case without numpy) is recorded next to
                # the measurements it produced.
                meta: Dict[str, object] = dict(self.header_meta or {})
                meta.update({
                    "strategy_requested": self.strategy,
                    "strategy_used": strategy_used,
                    "cases": len(self.cases),
                    "pending": len(pending),
                })
                journal.write_header(meta)
        try:
            for index, record in self._completions(pending, strategy_used):
                records[index] = record
                if journal is not None:
                    journal.append(JournalEntry(
                        case_index=index, kind=_record_kind(record),
                        case=case_fingerprint(self.cases[index]),
                        record=record.as_dict()))
                if case_sink is not None:
                    case_sink(index, record)
                if progress:
                    emit(f"[sweep] {record.progress_line()}")
        finally:
            if journal is not None:
                journal.close()
        assert all(record is not None for record in records)
        return SweepResult(list(records))
