"""Batch execution of test-power scenario grids (the paper-scale sweeps).

A sweep batch-executes a grid of *(geometry x algorithm x address-order x
backend)* scenarios, each one a full functional-vs-low-power-test-mode
comparison (the measurement behind the paper's Table 1), with optional
multiprocessing fan-out across scenarios and JSON/CSV export of the
results.  Together with the vectorized engine this turns the reproduction
into an experiment service: the full 512 x 512 measured Table 1 — minutes
per algorithm on the reference engine — becomes one CLI invocation
(``python -m repro.sweep --paper``) that completes in seconds.

Design notes:

* a :class:`SweepCase` is a plain, picklable description (names and
  integers, no live objects), so cases travel cheaply to worker processes
  and round-trip through JSON;
* :func:`run_case` is a module-level function — the unit of work a
  ``multiprocessing.Pool`` maps over;
* a :class:`SweepResult` holds one :class:`SweepRecord` per scenario and
  renders through :func:`repro.analysis.tables.render_table`, so sweep
  output matches the benchmark tables.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.tables import render_table
from ..core.prr import AnalyticalPowerModel
from ..core.session import BACKENDS, TestSession
from ..march.element import AddressingDirection
from ..march.library import PAPER_TABLE1_ALGORITHMS, get_algorithm
from ..march.ordering import ORDER_REGISTRY, make_order
from ..sram.geometry import ArrayGeometry


class SweepError(Exception):
    """Raised on malformed sweep specifications."""


GeometryLike = Union[ArrayGeometry, Tuple[int, int], Tuple[int, int, int], str]


def parse_geometry(spec: GeometryLike) -> ArrayGeometry:
    """Coerce a geometry specification into an :class:`ArrayGeometry`.

    Accepts an :class:`ArrayGeometry`, a ``(rows, columns)`` or
    ``(rows, columns, bits_per_word)`` tuple, or a string like ``"512x512"``
    / ``"64x64x4"`` (the CLI form).
    """
    if isinstance(spec, ArrayGeometry):
        return spec
    if isinstance(spec, str):
        parts = spec.lower().replace("×", "x").split("x")
        if len(parts) not in (2, 3):
            raise SweepError(
                f"geometry {spec!r} must look like ROWSxCOLS or ROWSxCOLSxBITS")
        try:
            numbers = [int(part) for part in parts]
        except ValueError as exc:
            raise SweepError(f"geometry {spec!r} has non-integer fields") from exc
        return ArrayGeometry(*numbers)
    return ArrayGeometry(*spec)


@dataclass(frozen=True)
class SweepCase:
    """One scenario of a sweep grid (picklable, JSON-friendly).

    Everything is carried by name or plain number so the case can be sent
    to a worker process and rebuilt there: the algorithm resolves through
    :func:`repro.march.get_algorithm`, the order through
    :func:`repro.march.ordering.make_order`.
    """

    rows: int
    columns: int
    algorithm: str
    bits_per_word: int = 1
    order: str = "row-major"
    any_direction: str = "up"
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.order not in ORDER_REGISTRY:
            raise SweepError(
                f"unknown address order {self.order!r}; "
                f"available: {sorted(ORDER_REGISTRY)}")
        if self.backend not in BACKENDS:
            raise SweepError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}")
        get_algorithm(self.algorithm)  # fail fast on unknown names

    def geometry(self) -> ArrayGeometry:
        """The array geometry this case runs on."""
        return ArrayGeometry(rows=self.rows, columns=self.columns,
                             bits_per_word=self.bits_per_word)

    def label(self) -> str:
        """Short human-readable scenario label used in logs and tables."""
        geometry = f"{self.rows}x{self.columns}"
        if self.bits_per_word != 1:
            geometry += f"x{self.bits_per_word}"
        return f"{self.algorithm} @ {geometry} [{self.order}, {self.backend}]"


@dataclass
class SweepRecord:
    """The measurements of one executed :class:`SweepCase`."""

    rows: int
    columns: int
    bits_per_word: int
    algorithm: str
    order: str
    any_direction: str
    backend: str            # requested backend
    backend_used: str       # engine that actually ran ("vectorized"/"reference")
    cycles_per_mode: int
    functional_power_w: float
    low_power_power_w: float
    measured_prr: float
    analytical_prr: float   # the paper's Section 5 equation
    analytical_prr_recharge: float  # + the next-column recharge term
    passed: bool            # no read mismatch in either mode
    elapsed_s: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (the JSON/CSV row)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepRecord":
        """Rebuild a record from :meth:`as_dict` output (JSON/CSV import)."""
        kwargs = {}
        for spec in fields(cls):
            if spec.name not in data:
                raise SweepError(f"sweep record is missing field {spec.name!r}")
            value = data[spec.name]
            if spec.type in ("int", int):
                value = int(value)  # CSV round-trip delivers strings
            elif spec.type in ("float", float):
                value = float(value)
            elif spec.type in ("bool", bool) and isinstance(value, str):
                value = value == "True"
            kwargs[spec.name] = value
        return cls(**kwargs)

    def table_row(self) -> Dict[str, object]:
        """One row of the sweep report table."""
        geometry = f"{self.rows}x{self.columns}"
        if self.bits_per_word != 1:
            geometry += f"x{self.bits_per_word}"
        return {
            "Algorithm": self.algorithm,
            "Geometry": geometry,
            "Order": self.order,
            "Backend": self.backend_used,
            "PRR measured": f"{100.0 * self.measured_prr:.1f} %",
            "PRR analytical": f"{100.0 * self.analytical_prr:.1f} %",
            "PRR analytical (+recharge)": f"{100.0 * self.analytical_prr_recharge:.1f} %",
            "P_F (mW)": f"{self.functional_power_w * 1e3:.3f}",
            "P_LPT (mW)": f"{self.low_power_power_w * 1e3:.3f}",
            "Cycles/mode": self.cycles_per_mode,
            "Runtime (s)": f"{self.elapsed_s:.2f}",
        }


def run_case(case: SweepCase) -> SweepRecord:
    """Execute one scenario: both modes, measured and analytical PRR.

    This is the multiprocessing work unit.  A requested ``"vectorized"`` or
    ``"auto"`` backend first tries the batch engine; ``"auto"`` falls back
    to the reference engine for configurations the engine rejects, and the
    record's ``backend_used`` reports which engine actually ran.
    """
    from ..engine import EngineError  # deferred: numpy optional

    geometry = case.geometry()
    algorithm = get_algorithm(case.algorithm)
    order = make_order(case.order, geometry)
    any_direction = AddressingDirection(case.any_direction)
    session = TestSession(geometry, order=order, any_direction=any_direction,
                          detailed=False)

    started = time.perf_counter()
    backend_used = "reference"
    if case.backend in ("vectorized", "auto"):
        try:
            comparison = session.compare_modes(algorithm, backend="vectorized")
            backend_used = "vectorized"
        except EngineError:
            # Unsupported scenario or numpy unavailable: "auto" falls back.
            if case.backend == "vectorized":
                raise
            comparison = session.compare_modes(algorithm, backend="reference")
    else:
        comparison = session.compare_modes(algorithm, backend="reference")
    elapsed = time.perf_counter() - started

    analytical = AnalyticalPowerModel(geometry)
    prediction = analytical.predict(algorithm)
    prediction_recharge = analytical.predict(
        algorithm, include_secondary=True, include_next_column_recharge=True)

    return SweepRecord(
        rows=case.rows,
        columns=case.columns,
        bits_per_word=case.bits_per_word,
        algorithm=algorithm.name,
        order=case.order,
        any_direction=case.any_direction,
        backend=case.backend,
        backend_used=backend_used,
        cycles_per_mode=comparison.functional.cycles,
        functional_power_w=comparison.functional.average_power,
        low_power_power_w=comparison.low_power.average_power,
        measured_prr=comparison.prr,
        analytical_prr=prediction.prr,
        analytical_prr_recharge=prediction_recharge.prr,
        passed=comparison.functional.passed and comparison.low_power.passed,
        elapsed_s=elapsed,
    )


@dataclass
class SweepResult:
    """The records of one executed sweep, with export/import helpers."""

    records: List[SweepRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def table_rows(self) -> List[Dict[str, object]]:
        """The sweep as :func:`repro.analysis.tables.render_table` rows."""
        return [record.table_row() for record in self.records]

    def render(self, title: str = "Sweep results") -> str:
        """Plain-text report table of the whole sweep."""
        return render_table(self.table_rows(), title=title)

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------
    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the records to ``path`` as a JSON document; returns the path."""
        path = Path(path)
        payload = {"format": "repro-sweep", "version": 1,
                   "records": [record.as_dict() for record in self.records]}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "SweepResult":
        """Load a sweep previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("format") != "repro-sweep":
            raise SweepError(f"{path} is not a repro sweep export")
        return cls([SweepRecord.from_dict(row) for row in payload["records"]])

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the records to ``path`` as CSV; returns the path."""
        import csv

        path = Path(path)
        names = [spec.name for spec in fields(SweepRecord)]
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=names)
            writer.writeheader()
            for record in self.records:
                writer.writerow(record.as_dict())
        return path

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "SweepResult":
        """Load a sweep previously written by :meth:`to_csv`."""
        import csv

        with Path(path).open(newline="", encoding="utf-8") as handle:
            return cls([SweepRecord.from_dict(row) for row in csv.DictReader(handle)])


def sweep_grid(geometries: Iterable[GeometryLike],
               algorithms: Iterable[str],
               orders: Iterable[str] = ("row-major",),
               backends: Iterable[str] = ("auto",),
               any_direction: str = "up") -> List[SweepCase]:
    """Build the full cross-product grid of scenarios.

    ``geometries`` accepts anything :func:`parse_geometry` does; the other
    axes are names.  The grid order is geometry-major so large scenarios
    cluster together, which helps the multiprocessing fan-out balance.
    """
    cases: List[SweepCase] = []
    for geometry_spec in geometries:
        geometry = parse_geometry(geometry_spec)
        for order in orders:
            for backend in backends:
                for algorithm in algorithms:
                    cases.append(SweepCase(
                        rows=geometry.rows, columns=geometry.columns,
                        bits_per_word=geometry.bits_per_word,
                        algorithm=algorithm, order=order,
                        any_direction=any_direction, backend=backend))
    return cases


def paper_table1_cases(backend: str = "vectorized") -> List[SweepCase]:
    """The paper-scale measured Table 1: 512 x 512, all five algorithms."""
    return sweep_grid(["512x512"],
                      [algorithm.name for algorithm in PAPER_TABLE1_ALGORITHMS],
                      backends=(backend,))


class SweepRunner:
    """Executes a list of :class:`SweepCase` scenarios, optionally in parallel.

    ``processes`` selects the fan-out: ``1`` (or ``None`` with one case)
    runs in-process; anything larger maps the cases over a
    ``multiprocessing.Pool`` of that size.  Workers rebuild every object
    from the case's names, so only plain data crosses process boundaries.
    """

    def __init__(self, cases: Sequence[SweepCase],
                 processes: Optional[int] = None) -> None:
        if not cases:
            raise SweepError("a sweep needs at least one case")
        if processes is not None and processes < 1:
            raise SweepError(f"processes must be >= 1, got {processes}")
        self.cases = list(cases)
        self.processes = processes

    def run(self, progress: bool = False) -> SweepResult:
        """Execute every case and return the collected :class:`SweepResult`.

        With ``progress`` true, a one-line status is printed per completed
        case (sequential mode) or per chunk (parallel mode).
        """
        workers = self.processes or 1
        workers = min(workers, len(self.cases))
        if workers <= 1:
            records = []
            for case in self.cases:
                record = run_case(case)
                if progress:
                    print(f"[sweep] {case.label()}: "
                          f"PRR {100 * record.measured_prr:.1f} % "
                          f"({record.elapsed_s:.2f} s, {record.backend_used})")
                records.append(record)
            return SweepResult(records)
        with multiprocessing.get_context().Pool(processes=workers) as pool:
            records = pool.map(run_case, self.cases)
        if progress:
            for record in records:
                print(f"[sweep] {record.algorithm} @ "
                      f"{record.rows}x{record.columns}: "
                      f"PRR {100 * record.measured_prr:.1f} % "
                      f"({record.elapsed_s:.2f} s, {record.backend_used})")
        return SweepResult(records)
