"""Command line for the sweep runner: ``python -m repro.sweep``.

Examples::

    # The paper-scale measured Table 1 (512 x 512, five algorithms,
    # vectorized backend) with a result table on stdout:
    python -m repro.sweep --paper

    # The same measured Table 1 through the BIST deployment path, with
    # the analytical PRR band next to every measurement:
    python -m repro.sweep --paper-table1

    # The paper-scale DOF-1 invariance check (512 x 512, the standard
    # fault battery under three address orders, campaign engine):
    python -m repro.sweep --paper-coverage

    # A custom measured-vs-analytical PRR grid on two geometries:
    python -m repro.sweep --prr-grid --geometry 64x512 --geometry 128x512 \\
        --algorithm "March C-" --json prr.json

    # A custom power grid, fanned out over four worker processes, exported:
    python -m repro.sweep --geometry 64x64 --geometry 128x128 \\
        --algorithm "March C-" --algorithm "MATS+" \\
        --order row-major --processes 4 --csv sweep.csv --json sweep.json

    # A reproducible coverage campaign on a custom geometry:
    python -m repro.sweep --coverage --geometry 128x128 \\
        --algorithm "March C-" --seed 7 --sample 12 --json campaign.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..core.session import BACKENDS
from ..engine import EngineError
from ..faults import DEFAULT_LOCATION_SEED
from ..march.library import PAPER_TABLE1_ALGORITHMS
from ..march.ordering import ORDER_REGISTRY
from .runner import (
    INVARIANCE_ORDERS,
    SweepError,
    SweepRunner,
    coverage_grid,
    paper_coverage_cases,
    paper_prr_cases,
    paper_table1_cases,
    prr_grid,
    sweep_grid,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.sweep`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Batch-execute grids of SRAM test scenarios: "
                    "power measurements (functional vs. low-power test "
                    "mode, measured PRR) or fault-coverage campaigns "
                    "(DOF-1 invariance).")
    parser.add_argument("--geometry", action="append", default=None,
                        metavar="ROWSxCOLS[xBITS]",
                        help="array geometry, repeatable (default: 64x64)")
    parser.add_argument("--algorithm", action="append", default=None,
                        metavar="NAME",
                        help="March algorithm name, repeatable "
                             "(default: the five Table 1 algorithms)")
    parser.add_argument("--order", action="append", default=None,
                        choices=sorted(ORDER_REGISTRY),
                        help="address order, repeatable (default: row-major "
                             "for power sweeps; row-major + column-major + "
                             "pseudo-random for coverage campaigns)")
    parser.add_argument("--backend", default="auto", choices=BACKENDS,
                        help="execution engine (default: auto)")
    parser.add_argument("--processes", type=int, default=1, metavar="N",
                        help="worker processes for the fan-out (default: 1)")
    parser.add_argument("--paper", action="store_true",
                        help="preset: the paper's 512x512 measured Table 1 "
                             "(overrides --geometry/--algorithm/--order)")
    parser.add_argument("--prr-grid", action="store_true",
                        help="run BIST power campaigns (measured vs. "
                             "analytical PRR through the backend-pluggable "
                             "BIST controller) instead of session power "
                             "measurements")
    parser.add_argument("--paper-table1", action="store_true",
                        help="preset: the paper's measured Table 1 through "
                             "the BIST path on the full 512x512 array, with "
                             "the analytical PRR band (implies --prr-grid; "
                             "overrides --geometry/--algorithm/--order)")
    parser.add_argument("--coverage", action="store_true",
                        help="run fault-coverage campaigns (DOF-1 invariance "
                             "over the standard fault battery) instead of "
                             "power measurements")
    parser.add_argument("--paper-coverage", action="store_true",
                        help="preset: the paper's Section 3 DOF-1 invariance "
                             "check on the full 512x512 array (implies "
                             "--coverage; overrides --geometry/--algorithm/"
                             "--order)")
    parser.add_argument("--seed", type=int, default=DEFAULT_LOCATION_SEED,
                        metavar="N",
                        help="fault-location sampling seed for coverage "
                             "campaigns, recorded in exports "
                             f"(default: {DEFAULT_LOCATION_SEED})")
    parser.add_argument("--sample", type=int, default=6, metavar="N",
                        help="pseudo-random victim locations added to the "
                             "corners/centre spread (default: 6)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="export the records to a JSON file")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="export the records to a CSV file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the result table and progress lines")
    return parser


def _build_cases(args: argparse.Namespace):
    """Turn parsed arguments into (cases, report title)."""
    if args.paper and (args.coverage or args.paper_coverage):
        raise SweepError("--paper measures power; combine coverage runs "
                         "with --paper-coverage instead")
    if (args.prr_grid or args.paper_table1) and \
            (args.coverage or args.paper_coverage or args.paper):
        raise SweepError("--prr-grid/--paper-table1 run BIST power "
                         "campaigns; they cannot be combined with "
                         "--paper/--coverage/--paper-coverage")
    if args.paper_table1:
        backend = "vectorized" if args.backend == "auto" else args.backend
        cases = paper_prr_cases(backend=backend, seed=args.seed)
        title = ("Paper-scale BIST campaign — measured vs. analytical "
                 "Table 1 on the full 512x512 array")
    elif args.prr_grid:
        geometries = args.geometry or ["64x64"]
        algorithms = args.algorithm or [a.name for a in PAPER_TABLE1_ALGORITHMS]
        cases = prr_grid(geometries, algorithms, backend=args.backend,
                         seed=args.seed)
        title = f"BIST PRR campaigns ({len(cases)} scenarios)"
    elif args.paper_coverage:
        cases = paper_coverage_cases(backend=args.backend, seed=args.seed,
                                     sample=args.sample)
        title = ("Paper-scale DOF-1 campaign — fault-detection invariance "
                 "on the full 512x512 array")
    elif args.coverage:
        geometries: List[str] = args.geometry or ["64x64"]
        algorithms = args.algorithm or [a.name for a in PAPER_TABLE1_ALGORITHMS]
        orders = tuple(args.order) if args.order else INVARIANCE_ORDERS
        cases = coverage_grid(geometries, algorithms, orders=orders,
                              backend=args.backend, sample=args.sample,
                              seed=args.seed)
        title = f"DOF-1 coverage campaigns ({len(cases)} scenarios)"
    elif args.paper:
        backend = "vectorized" if args.backend == "auto" else args.backend
        cases = paper_table1_cases(backend=backend)
        title = ("Paper-scale sweep — measured Table 1 on the full 512x512 "
                 "array")
    else:
        geometries = args.geometry or ["64x64"]
        algorithms = args.algorithm or [a.name for a in PAPER_TABLE1_ALGORITHMS]
        orders = args.order or ["row-major"]
        cases = sweep_grid(geometries, algorithms, orders=orders,
                           backends=(args.backend,))
        title = f"Sweep results ({len(cases)} scenarios)"
    return cases, title


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code (0 ok, 2 on bad input)."""
    args = build_parser().parse_args(argv)

    try:
        cases, title = _build_cases(args)
    except (SweepError, KeyError, ValueError) as exc:
        # Bad grid input (geometry syntax, unknown algorithm/order name):
        # report it as a CLI error instead of a traceback.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2

    try:
        runner = SweepRunner(cases, processes=args.processes)
        result = runner.run(progress=not args.quiet)
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except EngineError as exc:
        # backend=vectorized was requested explicitly for a scenario the
        # engine cannot replay exactly (e.g. a custom fault model or a
        # non-neighbour address order).
        print(f"error: {exc}\nhint: use --backend auto to fall back to the "
              "reference engine for such scenarios", file=sys.stderr)
        return 2

    if not args.quiet:
        print()
        print(result.render(title=title))
    if args.json:
        result.to_json(args.json)
        if not args.quiet:
            print(f"\nJSON written to {args.json}")
    if args.csv:
        result.to_csv(args.csv)
        if not args.quiet:
            print(f"CSV written to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
