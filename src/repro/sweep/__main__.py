"""Command line for the sweep runner: ``python -m repro.sweep``.

Examples::

    # The paper-scale measured Table 1 (512 x 512, five algorithms,
    # vectorized backend) with a result table on stdout:
    python -m repro.sweep --paper

    # A custom grid, fanned out over four worker processes, exported:
    python -m repro.sweep --geometry 64x64 --geometry 128x128 \\
        --algorithm "March C-" --algorithm "MATS+" \\
        --order row-major --processes 4 --csv sweep.csv --json sweep.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..core.session import BACKENDS
from ..engine import EngineError
from ..march.library import PAPER_TABLE1_ALGORITHMS
from ..march.ordering import ORDER_REGISTRY
from .runner import SweepError, SweepRunner, paper_table1_cases, sweep_grid


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.sweep`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Batch-execute grids of SRAM test-power scenarios "
                    "(functional vs. low-power test mode, measured PRR).")
    parser.add_argument("--geometry", action="append", default=None,
                        metavar="ROWSxCOLS[xBITS]",
                        help="array geometry, repeatable (default: 64x64)")
    parser.add_argument("--algorithm", action="append", default=None,
                        metavar="NAME",
                        help="March algorithm name, repeatable "
                             "(default: the five Table 1 algorithms)")
    parser.add_argument("--order", action="append", default=None,
                        choices=sorted(ORDER_REGISTRY),
                        help="address order, repeatable (default: row-major)")
    parser.add_argument("--backend", default="auto", choices=BACKENDS,
                        help="execution engine (default: auto)")
    parser.add_argument("--processes", type=int, default=1, metavar="N",
                        help="worker processes for the fan-out (default: 1)")
    parser.add_argument("--paper", action="store_true",
                        help="preset: the paper's 512x512 measured Table 1 "
                             "(overrides --geometry/--algorithm/--order)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="export the records to a JSON file")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="export the records to a CSV file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the result table and progress lines")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code (0 ok, 2 on bad input)."""
    args = build_parser().parse_args(argv)

    try:
        if args.paper:
            backend = "vectorized" if args.backend == "auto" else args.backend
            cases = paper_table1_cases(backend=backend)
            title = ("Paper-scale sweep — measured Table 1 on the full 512x512 "
                     "array")
        else:
            geometries: List[str] = args.geometry or ["64x64"]
            algorithms = args.algorithm or [a.name for a in PAPER_TABLE1_ALGORITHMS]
            orders = args.order or ["row-major"]
            cases = sweep_grid(geometries, algorithms, orders=orders,
                               backends=(args.backend,))
            title = f"Sweep results ({len(cases)} scenarios)"
    except (SweepError, KeyError, ValueError) as exc:
        # Bad grid input (geometry syntax, unknown algorithm/order name):
        # report it as a CLI error instead of a traceback.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2

    try:
        runner = SweepRunner(cases, processes=args.processes)
        result = runner.run(progress=not args.quiet)
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except EngineError as exc:
        # backend=vectorized was requested explicitly for a scenario the
        # engine cannot replay exactly (e.g. a non-neighbour address order).
        print(f"error: {exc}\nhint: use --backend auto to fall back to the "
              "reference engine for such scenarios", file=sys.stderr)
        return 2

    if not args.quiet:
        print()
        print(result.render(title=title))
    if args.json:
        result.to_json(args.json)
        if not args.quiet:
            print(f"\nJSON written to {args.json}")
    if args.csv:
        result.to_csv(args.csv)
        if not args.quiet:
            print(f"CSV written to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
