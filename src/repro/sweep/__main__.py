"""Command line for the sweep runner: ``python -m repro.sweep``.

Examples::

    # The paper-scale measured Table 1 (512 x 512, five algorithms,
    # vectorized backend) with a result table on stdout:
    python -m repro.sweep --paper

    # The same measured Table 1 through the BIST deployment path, with
    # the analytical PRR band next to every measurement:
    python -m repro.sweep --paper-table1

    # The paper-scale DOF-1 invariance check (512 x 512, the standard
    # fault battery under three address orders, campaign engine):
    python -m repro.sweep --paper-coverage

    # A custom measured-vs-analytical PRR grid on two geometries:
    python -m repro.sweep --prr-grid --geometry 64x512 --geometry 128x512 \\
        --algorithm "March C-" --json prr.json

    # A custom power grid, fanned out over four worker processes, exported:
    python -m repro.sweep --geometry 64x64 --geometry 128x128 \\
        --algorithm "March C-" --algorithm "MATS+" \\
        --order row-major --processes 4 --csv sweep.csv --json sweep.json

    # A reproducible coverage campaign on a custom geometry:
    python -m repro.sweep --coverage --geometry 128x128 \\
        --algorithm "March C-" --seed 7 --sample 12 --json campaign.json

    # A durable campaign: one fsync'd JSONL line per completed case.  If
    # the run is interrupted, --resume re-executes only the missing cases:
    python -m repro.sweep --paper-table1 --processes 4 --journal run.jsonl
    python -m repro.sweep --paper-table1 --processes 4 --journal run.jsonl \\
        --resume --json table1.json

    # Split a grid across two machines (disjoint, exhaustive shards):
    python -m repro.sweep --paper-coverage --shard 1/2 --journal shard1.jsonl
    python -m repro.sweep --paper-coverage --shard 2/2 --journal shard2.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from ..core.session import BACKENDS
from ..engine import EngineError
from ..engine.dispatch import KERNEL_CHOICES
from ..faults import DEFAULT_LOCATION_SEED
from ..march.library import PAPER_TABLE1_ALGORITHMS
from ..march.ordering import ORDER_REGISTRY
from ..sram.geometry import BANK_INTERLEAVE_MODES
from .journal import JournalError
from .runner import (
    DEFAULT_SAMPLE,
    INVARIANCE_ORDERS,
    STRATEGIES,
    SweepError,
    SweepRunner,
    coverage_grid,
    paper_coverage_cases,
    paper_prr_cases,
    paper_table1_cases,
    prr_grid,
    shard_cases,
    sweep_grid,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.sweep`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Batch-execute grids of SRAM test scenarios: "
                    "power measurements (functional vs. low-power test "
                    "mode, measured PRR) or fault-coverage campaigns "
                    "(DOF-1 invariance).")
    parser.add_argument("--geometry", action="append", default=None,
                        metavar="ROWSxCOLS[xBITS]",
                        help="array geometry, repeatable (default: 64x64)")
    parser.add_argument("--algorithm", action="append", default=None,
                        metavar="NAME",
                        help="March algorithm name, repeatable "
                             "(default: the five Table 1 algorithms)")
    parser.add_argument("--order", action="append", default=None,
                        choices=sorted(ORDER_REGISTRY),
                        help="address order, repeatable (default: row-major "
                             "for power sweeps; row-major + column-major + "
                             "pseudo-random for coverage campaigns)")
    parser.add_argument("--backend", default="auto", choices=BACKENDS,
                        help="execution engine (default: auto)")
    parser.add_argument("--kernel", default=None, choices=KERNEL_CHOICES,
                        help="vectorized-engine kernel tier: 'flat' (the "
                             "stacked numpy kernel), 'segmented' (the "
                             "chunked low-memory path), 'jit' (the numba-"
                             "compiled tier), 'gpu' (the CuPy tier), or "
                             "'auto' (jit when numba is importable, else "
                             "flat); compiled tiers fall back to flat with "
                             "a warning when their dependency is absent, "
                             "and records carry the tier that actually ran "
                             "(default: the process-wide engine default)")
    parser.add_argument("--banks", type=int, action="append", default=None,
                        metavar="N",
                        help="sub-array bank count, repeatable — each value "
                             "adds a banked variant of every geometry to "
                             "power/PRR grids (default: 1, the paper's "
                             "monolithic array; rows must divide evenly)")
    parser.add_argument("--bank-interleave", default="blocked",
                        choices=sorted(BANK_INTERLEAVE_MODES),
                        help="row-to-bank map for banked geometries: "
                             "'blocked' contiguous row ranges, 'interleaved' "
                             "rows striped across banks (default: blocked)")
    parser.add_argument("--processes", type=int, default=None, metavar="N",
                        help="worker processes for the per-case fan-out "
                             "(default: one per CPU core, clamped to the "
                             "grid size; ignored by --strategy batched)")
    parser.add_argument("--strategy", default="auto", choices=STRATEGIES,
                        help="grid evaluation strategy: 'batched' stacks "
                             "every same-geometry scenario (all algorithms, "
                             "orders and both planners) into one flat-kernel "
                             "pass sharing one compiled-trace cache, "
                             "'percase' executes one scenario at a time, "
                             "'auto' (default) picks batched whenever numpy "
                             "is available and no multi-process fan-out was "
                             "requested; records are identical either way")
    parser.add_argument("--paper", action="store_true",
                        help="preset: the paper's 512x512 measured Table 1 "
                             "(overrides --geometry/--algorithm/--order)")
    parser.add_argument("--prr-grid", action="store_true",
                        help="run BIST power campaigns (measured vs. "
                             "analytical PRR through the backend-pluggable "
                             "BIST controller) instead of session power "
                             "measurements")
    parser.add_argument("--paper-table1", action="store_true",
                        help="preset: the paper's measured Table 1 through "
                             "the BIST path on the full 512x512 array, with "
                             "the analytical PRR band (implies --prr-grid; "
                             "overrides --geometry/--algorithm/--order)")
    parser.add_argument("--coverage", action="store_true",
                        help="run fault-coverage campaigns (DOF-1 invariance "
                             "over the standard fault battery) instead of "
                             "power measurements")
    parser.add_argument("--paper-coverage", action="store_true",
                        help="preset: the paper's Section 3 DOF-1 invariance "
                             "check on the full 512x512 array (implies "
                             "--coverage; overrides --geometry/--algorithm/"
                             "--order)")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="fault-location sampling seed for coverage "
                             "campaigns (recorded verbatim in PRR-campaign "
                             "exports too), default: "
                             f"{DEFAULT_LOCATION_SEED}")
    parser.add_argument("--sample", type=int, default=None, metavar="N",
                        help="pseudo-random victim locations added to the "
                             "corners/centre spread of coverage campaigns "
                             f"(default: {DEFAULT_SAMPLE})")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="export the records to a JSON file")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="export the records to a CSV file")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="append one fsync'd JSONL line per completed "
                             "case to PATH (makes the campaign resumable)")
    parser.add_argument("--resume", action="store_true",
                        help="skip cases already recorded in --journal PATH; "
                             "their records are restored verbatim")
    parser.add_argument("--shard", metavar="I/N", default=None,
                        help="run only the I-th of N deterministic shards of "
                             "the grid (1-based), e.g. --shard 1/4; shards "
                             "are disjoint and their union is the full grid")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the result table and progress lines")
    return parser


def parse_shard(spec: str) -> Tuple[int, int]:
    """Parse a ``--shard I/N`` spec into a (1-based index, total) pair."""
    parts = spec.split("/")
    if len(parts) != 2:
        raise SweepError(f"shard {spec!r} must look like I/N, e.g. 2/4")
    try:
        return int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise SweepError(f"shard {spec!r} has non-integer fields") from exc


def _warn_ignored_flags(args: argparse.Namespace) -> None:
    """Tell the user about flags the selected workload silently drops.

    ``--order`` has no effect on BIST PRR campaigns (the BIST address
    generator fixes the word-line-sequential order) and ``--sample`` only
    shapes fault-coverage campaigns; passing either where it cannot apply
    used to be dropped without a word.
    """
    if args.order and (args.prr_grid or args.paper_table1):
        print("warning: --order is ignored by BIST PRR campaigns (the BIST "
              "address generator fixes the word-line-sequential order)",
              file=sys.stderr)
    elif args.order and (args.paper or args.paper_coverage):
        print("warning: --order is overridden by the --paper/"
              "--paper-coverage presets (they fix their own address orders)",
              file=sys.stderr)
    if args.sample is not None and not (args.coverage or args.paper_coverage):
        print("warning: --sample only affects fault-coverage campaigns "
              "(--coverage/--paper-coverage); it is ignored by power and "
              "PRR sweeps", file=sys.stderr)
    if args.seed is not None and not (args.coverage or args.paper_coverage
                                      or args.prr_grid or args.paper_table1):
        print("warning: --seed only affects coverage and PRR campaigns; it "
              "is ignored by plain power sweeps", file=sys.stderr)
    if args.banks is not None and (args.coverage or args.paper_coverage):
        print("warning: --banks only affects power and PRR sweeps (banking "
              "changes energies, not logical fault behaviour); it is "
              "ignored by coverage campaigns", file=sys.stderr)
    if args.kernel is not None and (args.coverage or args.paper_coverage):
        print("warning: --kernel only affects power and PRR sweeps (fault "
              "verdicts are kernel-tier-invariant by construction); it is "
              "ignored by coverage campaigns", file=sys.stderr)
    elif args.banks is not None and (args.paper or args.paper_table1):
        print("warning: --banks is overridden by the --paper/--paper-table1 "
              "presets (the paper's array is monolithic)", file=sys.stderr)


def _build_cases(args: argparse.Namespace):
    """Turn parsed arguments into (cases, report title)."""
    seed = args.seed if args.seed is not None else DEFAULT_LOCATION_SEED
    sample = args.sample if args.sample is not None else DEFAULT_SAMPLE
    if args.paper and (args.coverage or args.paper_coverage):
        raise SweepError("--paper measures power; combine coverage runs "
                         "with --paper-coverage instead")
    if (args.prr_grid or args.paper_table1) and \
            (args.coverage or args.paper_coverage or args.paper):
        raise SweepError("--prr-grid/--paper-table1 run BIST power "
                         "campaigns; they cannot be combined with "
                         "--paper/--coverage/--paper-coverage")
    if args.paper_table1:
        backend = "vectorized" if args.backend == "auto" else args.backend
        cases = paper_prr_cases(backend=backend, seed=seed,
                                kernel=args.kernel)
        title = ("Paper-scale BIST campaign — measured vs. analytical "
                 "Table 1 on the full 512x512 array")
    elif args.prr_grid:
        geometries = args.geometry or ["64x64"]
        algorithms = args.algorithm or [a.name for a in PAPER_TABLE1_ALGORITHMS]
        cases = prr_grid(geometries, algorithms, backend=args.backend,
                         seed=seed, banks=tuple(args.banks or (1,)),
                         bank_interleave=args.bank_interleave,
                         kernel=args.kernel)
        title = "BIST PRR campaigns ({count} scenarios)"
    elif args.paper_coverage:
        cases = paper_coverage_cases(backend=args.backend, seed=seed,
                                     sample=sample)
        title = ("Paper-scale DOF-1 campaign — fault-detection invariance "
                 "on the full 512x512 array")
    elif args.coverage:
        geometries: List[str] = args.geometry or ["64x64"]
        algorithms = args.algorithm or [a.name for a in PAPER_TABLE1_ALGORITHMS]
        orders = tuple(args.order) if args.order else INVARIANCE_ORDERS
        cases = coverage_grid(geometries, algorithms, orders=orders,
                              backend=args.backend, sample=sample,
                              seed=seed)
        title = "DOF-1 coverage campaigns ({count} scenarios)"
    elif args.paper:
        backend = "vectorized" if args.backend == "auto" else args.backend
        cases = paper_table1_cases(backend=backend, kernel=args.kernel)
        title = ("Paper-scale sweep — measured Table 1 on the full 512x512 "
                 "array")
    else:
        geometries = args.geometry or ["64x64"]
        algorithms = args.algorithm or [a.name for a in PAPER_TABLE1_ALGORITHMS]
        orders = args.order or ["row-major"]
        cases = sweep_grid(geometries, algorithms, orders=orders,
                           backends=(args.backend,),
                           banks=tuple(args.banks or (1,)),
                           bank_interleave=args.bank_interleave,
                           kernel=args.kernel)
        title = "Sweep results ({count} scenarios)"
    # Sharding applies before the title's scenario count so the report
    # describes what actually ran, not the full grid.
    if args.shard is not None:
        index, total = parse_shard(args.shard)
        cases = shard_cases(cases, index, total)
        if not cases:
            raise SweepError(f"shard {index}/{total} of this grid is empty; "
                             "use fewer shards")
        title += f" — shard {index}/{total}"
    return cases, title.replace("{count}", str(len(cases)))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code (0 ok, 2 on bad input)."""
    arguments = list(sys.argv[1:]) if argv is None else list(argv)
    if arguments and arguments[0] == "merge":
        # Journal merging is a subcommand (it unions *finished* shard
        # journals rather than running a grid), dispatched before the
        # sweep flag parser so its own help/errors stay coherent.
        from .merge import merge_main
        return merge_main(arguments[1:])
    args = build_parser().parse_args(arguments)

    try:
        cases, title = _build_cases(args)  # sharding applied inside
        if args.resume and args.journal is None:
            raise SweepError("--resume needs --journal PATH (the journal "
                             "written by the interrupted run)")
    except (SweepError, KeyError, ValueError) as exc:
        # Bad grid input (geometry syntax, unknown algorithm/order name,
        # malformed shard): report it as a CLI error instead of a traceback.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2

    _warn_ignored_flags(args)

    try:
        runner = SweepRunner(cases, processes=args.processes,
                             journal=args.journal, strategy=args.strategy)
        resolved_strategy = runner.resolve_strategy()
        if args.strategy == "batched" and resolved_strategy != "batched":
            print("warning: --strategy batched requires numpy, which is "
                  "unavailable; falling back to per-case execution (the "
                  "journal header records the strategy that actually ran)",
                  file=sys.stderr)
        elif args.strategy == "batched" and args.processes not in (None, 1):
            print("warning: --strategy batched evaluates the grid "
                  "in-process; --processes is ignored", file=sys.stderr)
        result = runner.run(progress=not args.quiet, resume=args.resume)
    except (SweepError, JournalError, OSError) as exc:
        # A mismatched/corrupt journal or an unwritable journal path.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except EngineError as exc:
        # backend=vectorized was requested explicitly for a scenario the
        # engine cannot replay exactly (e.g. a custom fault model or a
        # non-neighbour address order).
        print(f"error: {exc}\nhint: use --backend auto to fall back to the "
              "reference engine for such scenarios", file=sys.stderr)
        return 2

    if not args.quiet:
        print()
        print(result.render(title=title))
    try:
        if args.json:
            result.to_json(args.json)
            if not args.quiet:
                print(f"\nJSON written to {args.json}")
        if args.csv:
            result.to_csv(args.csv)
            if not args.quiet:
                print(f"CSV written to {args.csv}")
    except (SweepError, OSError) as exc:
        # Export failures (mixed records in a CSV, unwritable paths) are
        # CLI errors, not tracebacks — the sweep itself already ran.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
